"""Suffix re-execution engine: bit-identity, budgets, and the perf floor.

The engine (:mod:`repro.core.suffix`) is pure execution machinery — every
campaign result must be bit-identical with it on or off, at any worker
count, under any memory budget.  These tests pin that contract:

* a registry-wide hypothesis property test (model x cut layer x batch
  size x fault seed) asserting suffix re-execution equals the full
  forward bit for bit in eval mode;
* graceful full-forward fallback when the activation cache exceeds the
  memory budget;
* the determinism matrix: layerwise sweeps with the engine on/off and
  workers 1/2 produce identical curves, and checkpoint resume behaves
  identically with the engine on;
* a fast-tier timing smoke: on LeNet-5, a campaign scoped to the deepest
  layer must not be slower with the engine than without it.
"""

from __future__ import annotations

import time

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import nn
from repro.core.campaign import CampaignConfig, run_campaign
from repro.core.executor import CampaignExecutor, WeightFaultCellTask
from repro.core.suffix import SuffixForwardEngine, suffix_budget_bytes
from repro.data import SyntheticCIFAR10
from repro.hw.faultmodels import RandomBitFlip
from repro.hw.injector import FaultInjector
from repro.hw.memory import WeightMemory
from repro.models import LeNet5
from repro.models.registry import MODEL_BUILDERS, build_model, layer_names


# Small instantiations of every registered architecture: the property
# test sweeps the whole registry, so keep each forward pass in
# milliseconds.  Built once per session (module-level lazy cache).
_IMAGE_SIZE = 16
_EVAL_IMAGES = 24
_MODEL_CACHE: dict = {}


def _model_and_images(name: str):
    if name not in _MODEL_CACHE:
        if name == "mlp":
            model = build_model(name, seed=0)
            images = SyntheticCIFAR10(seed=5).generate(_EVAL_IMAGES, "test")[0]
        else:
            model = MODEL_BUILDERS[name](
                num_classes=10, width_mult=0.1, seed=0
            )
            images = SyntheticCIFAR10(seed=5).generate(_EVAL_IMAGES, "test")[0]
        model.eval()
        _MODEL_CACHE[name] = (model, images)
    return _MODEL_CACHE[name]


class TestForwardFromAndCollect:
    def test_forward_from_zero_equals_forward(self):
        model, images = _model_and_images("lenet5")
        np.testing.assert_array_equal(model(images), model.forward_from(0, images))

    def test_collect_then_forward_from_any_boundary(self):
        model, images = _model_and_images("lenet5")
        full, captured = model.forward_collect(images, range(len(model)))
        np.testing.assert_array_equal(full, model(images))
        for index, tensor in captured.items():
            np.testing.assert_array_equal(full, model.forward_from(index, tensor))

    def test_collect_out_of_range_rejected(self):
        model, images = _model_and_images("lenet5")
        with pytest.raises(IndexError):
            model.forward_collect(images, [len(model)])

    def test_forward_from_fires_child_hooks(self):
        model, images = _model_and_images("lenet5")
        seen = []
        handle = model[-1].register_forward_hook(
            lambda module, x, out: seen.append(out.shape)
        )
        try:
            model.forward_from(len(model) - 1, model.forward_collect(
                images, [len(model) - 1]
            )[1][len(model) - 1])
        finally:
            handle.remove()
        assert seen and seen[0][0] == images.shape[0]


class TestSuffixBitIdentity:
    """The engine's core contract, over the whole model registry."""

    @settings(max_examples=30, deadline=None)
    @given(
        name=st.sampled_from(sorted(MODEL_BUILDERS)),
        layer_pick=st.integers(0, 10**6),
        batch_size=st.sampled_from((7, 16, 24)),
        seed=st.integers(0, 1000),
    )
    def test_suffix_equals_full_forward_under_faults(
        self, name, layer_pick, batch_size, seed
    ):
        """model x cut layer x batch: faulted suffix == faulted full pass."""
        model, images = _model_and_images(name)
        layers = layer_names(model)
        layer = layers[layer_pick % len(layers)]
        memory = WeightMemory.from_model(model, layers=[layer])
        engine = SuffixForwardEngine.build(
            model, images, batch_size, scope_layers=memory.layer_names()
        )
        assert engine is not None
        injector = FaultInjector(memory)
        fault_set = RandomBitFlip(2e-4).sample(
            memory, np.random.default_rng(seed)
        )
        affected = injector.affected_layers(fault_set)
        assert set(affected) <= {layer}
        with injector.apply(fault_set):
            forward = engine.forward_fn(affected)
            with np.errstate(over="ignore", invalid="ignore"):
                for start in range(0, images.shape[0], batch_size):
                    batch = images[start : start + batch_size]
                    full = model(batch)
                    if forward is None:
                        continue  # legitimate fallback: still the full path
                    np.testing.assert_array_equal(forward(batch, start), full)

    def test_zero_fault_cells_replay_clean_logits(self):
        model, images = _model_and_images("lenet5")
        memory = WeightMemory.from_model(model)
        engine = SuffixForwardEngine.build(
            model, images, 16, scope_layers=memory.layer_names()
        )
        forward = engine.forward_fn([])
        np.testing.assert_array_equal(forward(images[:16], 0), model(images[:16]))
        assert engine.stats["cells_clean_shortcut"] == 1

    def test_unknown_batch_offset_falls_back_to_full_forward(self):
        model, images = _model_and_images("lenet5")
        engine = SuffixForwardEngine.build(
            model, images, 16, scope_layers=["FC-3"]
        )
        forward = engine.forward_fn(["FC-3"])
        odd = images[3:19]  # offset 3 is not a batch start
        np.testing.assert_array_equal(forward(odd, 3), model(odd))
        assert engine.stats["batches_full"] == 1


class TestMemoryBudget:
    def test_zero_budget_caches_nothing_but_stays_correct(self):
        """Cache over budget => graceful full-forward fallback."""
        model, images = _model_and_images("lenet5")
        memory = WeightMemory.from_model(model, layers=["FC-3"])
        engine = SuffixForwardEngine.build(
            model, images, 16, scope_layers=memory.layer_names(), budget_bytes=0
        )
        # The clean shortcut keeps the engine alive, but no boundary fits.
        assert engine is not None
        assert engine.cached_indices == []
        assert engine.stats["cached_bytes"] == 0
        assert engine.forward_fn(["FC-3"]) is None  # falls back to full
        np.testing.assert_array_equal(
            engine.forward_fn([])(images[:16], 0), model(images[:16])
        )

    def test_budget_prefers_deepest_boundaries(self):
        model, images = _model_and_images("lenet5")
        memory = WeightMemory.from_model(model)
        full = SuffixForwardEngine.build(
            model, images, 16, scope_layers=memory.layer_names()
        )
        assert len(full.cached_indices) > 1
        deepest_bytes = sum(
            batch[full.cached_indices[-1]].nbytes for batch in full._cached
        )
        tight = SuffixForwardEngine.build(
            model, images, 16, scope_layers=memory.layer_names(),
            budget_bytes=deepest_bytes + 1,
        )
        assert tight.cached_indices == [full.cached_indices[-1]]

    def test_budget_env_var_parsed(self, monkeypatch):
        monkeypatch.setenv("REPRO_SUFFIX_BUDGET_MB", "2")
        assert suffix_budget_bytes() == 2 * 1024 * 1024
        monkeypatch.setenv("REPRO_SUFFIX_BUDGET_MB", "not-a-number")
        assert suffix_budget_bytes() == 256 * 1024 * 1024

    def test_activation_static_cut_engine_skipped_without_cache(self):
        """No clean shortcut + nothing cached => no engine at all."""
        model, images = _model_and_images("lenet5")
        engine = SuffixForwardEngine.build(
            model, images, 16, scope_layers=["FC-3"],
            budget_bytes=0, clean_shortcut=False,
        )
        assert engine is None

    def test_global_disable_env(self, monkeypatch):
        model, images = _model_and_images("lenet5")
        monkeypatch.setenv("REPRO_NO_SUFFIX", "1")
        assert (
            SuffixForwardEngine.build(model, images, 16, scope_layers=["FC-3"])
            is None
        )


class TestDeterminismMatrix:
    """Engine on/off x workers 1/2: identical curves and resume behavior."""

    @pytest.fixture()
    def parts(self, trained_mlp, mlp_eval_arrays):
        images, labels = mlp_eval_arrays
        config = CampaignConfig(fault_rates=(1e-4, 1e-3), trials=2, seed=11)
        return trained_mlp, images, labels, config

    def test_layerwise_matrix(self, parts):
        from repro.analysis.layerwise import run_layerwise_analysis

        model, images, labels, config = parts
        baseline = run_layerwise_analysis(
            model, images, labels, config, suffix=False
        )
        for workers in (1, 2):
            result = run_layerwise_analysis(
                model, images, labels, config, workers=workers, suffix=True
            )
            assert result.ordered_layers() == baseline.ordered_layers()
            for layer, curve in result.curves.items():
                np.testing.assert_array_equal(
                    curve.accuracies, baseline.curves[layer].accuracies
                )
                assert (
                    curve.clean_accuracy == baseline.curves[layer].clean_accuracy
                )

    def test_layerwise_parallel_with_engine_globally_off(self, parts, monkeypatch):
        """REPRO_NO_SUFFIX reaches worker processes (the parallel off-switch)."""
        from repro.analysis.layerwise import run_layerwise_analysis

        model, images, labels, config = parts
        baseline = run_layerwise_analysis(
            model, images, labels, config, layers=["FC-1"], suffix=False
        )
        monkeypatch.setenv("REPRO_NO_SUFFIX", "1")
        result = run_layerwise_analysis(
            model, images, labels, config, layers=["FC-1"], workers=2
        )
        np.testing.assert_array_equal(
            result.curves["FC-1"].accuracies, baseline.curves["FC-1"].accuracies
        )

    def test_checkpoint_resume_with_suffix(self, parts, tmp_path):
        model, images, labels, config = parts
        memory = WeightMemory.from_model(model, layers=["FC-1"])
        path = tmp_path / "suffix.json"
        baseline = run_campaign(
            model, memory, images, labels, config, suffix=False
        )
        first = run_campaign(
            model, memory, images, labels, config, checkpoint=str(path)
        )
        np.testing.assert_array_equal(first.accuracies, baseline.accuracies)
        # Resuming a fully-checkpointed sweep recomputes nothing and
        # reproduces the same curve, engine on or off.
        for suffix in (True, False):
            resumed = run_campaign(
                model, memory, images, labels, config,
                checkpoint=str(path), suffix=suffix,
            )
            np.testing.assert_array_equal(resumed.accuracies, baseline.accuracies)


class TestTimingSmoke:
    def test_suffix_not_slower_on_lenet_deep_cut(self):
        """Fast-tier perf floor: the engine must pay for its clean pass.

        A LeNet-5 campaign scoped to the deepest FC layer re-executes
        ~5% of the network per cell; even with the one-time clean pass it
        must beat the full-forward path over a handful of cells.  A perf
        regression in the engine fails here, inside ``make fast``.
        """
        model = LeNet5(seed=0)
        model.eval()
        images, labels = SyntheticCIFAR10(seed=3).generate(128, "test")
        memory = WeightMemory.from_model(model, layers=["FC-3"])
        config = CampaignConfig(
            fault_rates=(1e-4, 3e-4), trials=4, seed=5, batch_size=64
        )

        def run_cells(suffix: bool) -> tuple[float, np.ndarray]:
            task = WeightFaultCellTask(
                model, memory, images, labels, config=config, suffix=suffix
            )
            # Time runner construction too: the engine's one-time clean
            # pass is exactly the cost it must amortise to win here.
            start = time.perf_counter()
            runner = task.make_runner()
            try:
                values = np.asarray(
                    [
                        runner.run_cell(rate_index, trial)
                        for rate_index in range(len(config.fault_rates))
                        for trial in range(config.trials)
                    ]
                )
                return time.perf_counter() - start, values
            finally:
                runner.close()

        full_seconds, full_values = run_cells(suffix=False)
        suffix_seconds, suffix_values = run_cells(suffix=True)
        np.testing.assert_array_equal(suffix_values, full_values)
        assert suffix_seconds <= full_seconds, (
            f"suffix engine slower than full forward: "
            f"{suffix_seconds:.3f}s vs {full_seconds:.3f}s"
        )


class TestSharedSuffixCache:
    """One clean pass per host: exported caches rebuild engines exactly."""

    def _engine_parts(self):
        model = LeNet5(seed=0)
        model.eval()
        images, _ = SyntheticCIFAR10(seed=5).generate(48, "test")
        memory = WeightMemory.from_model(model)
        return model, images, memory

    def test_export_import_is_bit_identical(self):
        import pickle

        from repro.core.suffix import shared_cache

        model, images, memory = self._engine_parts()
        engine = SuffixForwardEngine.build(
            model, images, 16, scope_layers=memory.layer_names()
        )
        cache = engine.export_cache()
        assert cache is not None

        # A bit-exact sibling (what a worker deserializes) + the cache.
        sibling = pickle.loads(pickle.dumps(model))
        with shared_cache(cache):
            shared = SuffixForwardEngine.build(
                sibling, images, 16, scope_layers=memory.layer_names()
            )
        assert shared.stats["from_shared_cache"] is True
        assert shared.cached_indices == engine.cached_indices

        # Suffix forwards from every cached boundary agree bit for bit.
        for layer in memory.layer_names():
            local_fn = engine.forward_fn([layer])
            shared_fn = shared.forward_fn([layer])
            assert (local_fn is None) == (shared_fn is None)
            if local_fn is None:
                continue
            for start in range(0, images.shape[0], 16):
                batch = images[start : start + 16]
                np.testing.assert_array_equal(
                    local_fn(batch, start), shared_fn(batch, start)
                )
        # The clean shortcut replays identical logits too.
        for start in range(0, images.shape[0], 16):
            batch = images[start : start + 16]
            np.testing.assert_array_equal(
                engine.forward_fn([])(batch, start),
                shared.forward_fn([])(batch, start),
            )

    def test_incompatible_cache_is_ignored(self):
        from repro.core.suffix import shared_cache

        model, images, memory = self._engine_parts()
        engine = SuffixForwardEngine.build(
            model, images, 16, scope_layers=memory.layer_names()
        )
        cache = engine.export_cache()
        with shared_cache(cache):
            # Different batching: the offer must be declined, not misused.
            rebuilt = SuffixForwardEngine.build(
                model, images, 24, scope_layers=memory.layer_names()
            )
        assert rebuilt.stats["from_shared_cache"] is False

    def test_none_offer_is_a_noop(self):
        from repro.core.suffix import shared_cache

        model, images, memory = self._engine_parts()
        with shared_cache(None):
            engine = SuffixForwardEngine.build(
                model, images, 16, scope_layers=memory.layer_names()
            )
        assert engine.stats["from_shared_cache"] is False

    def test_closed_engine_exports_nothing(self):
        model, images, memory = self._engine_parts()
        engine = SuffixForwardEngine.build(
            model, images, 16, scope_layers=memory.layer_names()
        )
        engine.close()
        assert engine.export_cache() is None

    def test_executor_publishes_caches_for_pending_tasks(self):
        """_export_suffix_caches packs one cache per pending task."""
        from repro.core.executor import _export_suffix_caches
        from repro.utils.shm import PackedUnit

        model, images, memory = self._engine_parts()
        labels = np.zeros(images.shape[0], dtype=np.int64)
        config = CampaignConfig(fault_rates=(1e-4,), trials=1, seed=3)
        tasks = [
            WeightFaultCellTask(model, memory, images, labels, config=config)
            for _ in range(2)
        ]
        caches = _export_suffix_caches(tasks, [[(0, 0)], []])
        assert sorted(caches) == [0]  # only the pending task publishes
        assert isinstance(caches[0], PackedUnit)
        assert len(caches[0].buffers) > 0  # activations ship out-of-band

    def test_export_respects_global_disable(self, monkeypatch):
        from repro.core.executor import _export_suffix_caches

        monkeypatch.setenv("REPRO_NO_SUFFIX", "1")
        model, images, memory = self._engine_parts()
        labels = np.zeros(images.shape[0], dtype=np.int64)
        config = CampaignConfig(fault_rates=(1e-4,), trials=1, seed=3)
        task = WeightFaultCellTask(model, memory, images, labels, config=config)
        assert _export_suffix_caches([task], [[(0, 0)]]) == {}
