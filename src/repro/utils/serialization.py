"""Model and experiment serialization.

Models are persisted as ``.npz`` archives holding one array per named
parameter/buffer plus a small JSON metadata blob (architecture name and
constructor kwargs).  The zoo (:mod:`repro.models.zoo`) uses this to cache
trained models so experiments never retrain unnecessarily.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.nn.module import Module

__all__ = [
    "save_state_dict",
    "load_state_dict",
    "save_model",
    "load_model_state",
]

_META_KEY = "__repro_meta__"


def save_state_dict(
    path: "str | Path",
    state: Mapping[str, np.ndarray],
    metadata: "Mapping[str, Any] | None" = None,
) -> Path:
    """Write a name→array mapping (plus optional JSON metadata) to ``path``.

    Parent directories are created as needed.  Returns the resolved path.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    arrays: dict[str, np.ndarray] = {}
    for name, array in state.items():
        if name == _META_KEY:
            raise ValueError(f"state key {name!r} is reserved")
        arrays[name] = np.asarray(array)
    meta_json = json.dumps(dict(metadata or {}), sort_keys=True)
    arrays[_META_KEY] = np.frombuffer(meta_json.encode("utf-8"), dtype=np.uint8)
    np.savez(target, **arrays)
    return target


def load_state_dict(path: "str | Path") -> tuple[dict[str, np.ndarray], dict[str, Any]]:
    """Read back a ``(state, metadata)`` pair written by :func:`save_state_dict`."""
    source = Path(path)
    if not source.exists():
        raise FileNotFoundError(f"no such model file: {source}")
    with np.load(source) as archive:
        metadata: dict[str, Any] = {}
        state: dict[str, np.ndarray] = {}
        for name in archive.files:
            if name == _META_KEY:
                metadata = json.loads(bytes(archive[name]).decode("utf-8"))
            else:
                state[name] = archive[name]
    return state, metadata


def save_model(
    path: "str | Path",
    model: "Module",
    metadata: "Mapping[str, Any] | None" = None,
) -> Path:
    """Persist ``model.state_dict()`` together with ``metadata``."""
    return save_state_dict(path, model.state_dict(), metadata)


def load_model_state(path: "str | Path", model: "Module") -> dict[str, Any]:
    """Load parameters from ``path`` into ``model`` in place.

    Returns the metadata stored alongside the parameters.  Raises if the
    archive's parameter names or shapes do not match the model.
    """
    state, metadata = load_state_dict(path)
    model.load_state_dict(state)
    return metadata
