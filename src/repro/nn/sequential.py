"""Sequential container with layer replacement and suffix re-execution.

Layer replacement (``replace``) is what the FT-ClipAct methodology uses to
swap unbounded activations for clipped ones without rebuilding the model.

``forward_collect`` / ``forward_from`` are the two halves of *suffix
re-execution* (see :mod:`repro.core.suffix`): one full forward pass records
the tensors flowing into selected children, and later passes restart from
such a recorded tensor, running only the suffix of the layer stack.  Both
run the children through ``__call__`` so per-layer forward hooks fire
exactly as in a plain forward; only the container's *own* hooks are
skipped (they observe the full input/output pair, which a partial pass
does not have).
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.nn.module import Module

__all__ = ["Sequential"]


class Sequential(Module):
    """Run child modules in order; backward chains them in reverse."""

    def __init__(self, *layers: Module):
        super().__init__()
        for index, layer in enumerate(layers):
            if not isinstance(layer, Module):
                raise TypeError(
                    f"Sequential layers must be Modules, got "
                    f"{type(layer).__name__} at position {index}"
                )
            setattr(self, str(index), layer)

    def __len__(self) -> int:
        return len(self._modules)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __getitem__(self, index: int) -> Module:
        return self._modules[str(self._normalize_index(index))]

    def _normalize_index(self, index: int) -> int:
        length = len(self._modules)
        if index < 0:
            index += length
        if not 0 <= index < length:
            raise IndexError(f"index {index} out of range for {length} layers")
        return index

    def append(self, layer: Module) -> "Sequential":
        """Add a layer at the end; returns self for chaining."""
        if not isinstance(layer, Module):
            raise TypeError(f"expected a Module, got {type(layer).__name__}")
        setattr(self, str(len(self._modules)), layer)
        return self

    def replace(self, index: int, layer: Module) -> Module:
        """Swap the layer at ``index`` for ``layer``; returns the old layer."""
        if not isinstance(layer, Module):
            raise TypeError(f"expected a Module, got {type(layer).__name__}")
        index = self._normalize_index(index)
        old = self._modules[str(index)]
        layer.train(self.training)
        setattr(self, str(index), layer)
        return old

    def index_of(self, layer: Module) -> int:
        """Position of ``layer`` (by identity); raises ValueError if absent."""
        for index, candidate in enumerate(self._modules.values()):
            if candidate is layer:
                return index
        raise ValueError("layer is not a direct child of this Sequential")

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = x
        for layer in self._modules.values():
            out = layer(out)
        return out

    def forward_collect(
        self, x: np.ndarray, indices: "Iterable[int]"
    ) -> "tuple[np.ndarray, dict[int, np.ndarray]]":
        """Forward pass that also returns the inputs of selected children.

        ``indices`` are child positions; the returned mapping holds, for
        each requested index, the exact tensor that flowed *into* that
        child.  Captured tensors are the live intermediate arrays (no
        copies) — callers must treat them as read-only.
        """
        wanted = {self._normalize_index(index) for index in indices}
        captured: dict[int, np.ndarray] = {}
        out = x
        for index, layer in enumerate(self._modules.values()):
            if index in wanted:
                captured[index] = out
            out = layer(out)
        return out, captured

    def forward_from(
        self, index: int, x: np.ndarray, stop: "int | None" = None
    ) -> np.ndarray:
        """Run only the children at positions ``[index, stop)``.

        ``x`` must be the tensor that would flow into child ``index`` in a
        full forward pass (e.g. one captured by :meth:`forward_collect`);
        the result is then bit-identical to the full forward, because the
        skipped prefix would have recomputed exactly ``x``.
        ``forward_from(0, x)`` is equivalent to ``forward(x)``.  ``stop``
        (default: run to the end) bounds the range exclusively, returning
        the tensor that would flow *into* child ``stop`` — the composition
        ``forward_from(stop, forward_from(index, x, stop=stop))`` runs
        exactly the same layer sequence as ``forward_from(index, x)``.
        """
        index = self._normalize_index(index)
        children = list(self._modules.values())
        if stop is None:
            stop = len(children)
        elif not index <= stop <= len(children):
            raise IndexError(
                f"stop must lie in [{index}, {len(children)}], got {stop}"
            )
        out = x
        for layer in children[index:stop]:
            out = layer(out)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = grad_output
        for layer in reversed(list(self._modules.values())):
            grad = layer.backward(grad)
        return grad
