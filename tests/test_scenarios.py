"""Tests for the declarative scenario-spec subsystem (repro.scenarios).

Covers the schema (parse/serialize round-trips, validation, grid
expansion — property-tested with hypothesis), the fault-model registry
and samplers over both bit spaces, and the compiler's core contract:
a spec-driven run through one shared executor pool is bit-identical to
the equivalent direct ``run_campaign`` / ``run_quantized_campaign`` /
``run_activation_campaign`` call at workers 1 and 2.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.experiments as experiments
from repro.models import LeNet5, ZooConfig
from repro.scenarios import (
    CAMPAIGN_KINDS,
    FAULT_MODELS,
    MITIGATION_VARIANTS,
    CampaignSpec,
    FaultModelSpec,
    ScenarioContext,
    SpecFaultSampler,
    bundled_spec_names,
    expand_entry,
    load_scenarios,
    parse_suite,
    run_scenarios,
)

TINY = ZooConfig(
    model="lenet5",
    width_mult=1.0,
    n_train=200,
    n_val=100,
    n_test=80,
    epochs=2,
    seed=7,
)


@pytest.fixture
def tiny_configs(monkeypatch):
    monkeypatch.setitem(experiments.EXPERIMENT_CONFIGS, "lenet5", TINY)


# --------------------------------------------------------------------- #
# schema
# --------------------------------------------------------------------- #


class TestFaultModelSpec:
    def test_from_name_string(self):
        spec = FaultModelSpec.from_value("burst")
        assert spec.name == "burst" and spec.params == {}

    def test_from_mapping_splits_name_and_params(self):
        spec = FaultModelSpec.from_value({"name": "stuck_at", "value": 0})
        assert spec.name == "stuck_at" and spec.params == {"value": 0}

    def test_mapping_requires_name(self):
        with pytest.raises(ValueError, match="'name'"):
            FaultModelSpec.from_value({"value": 0})

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown fault model"):
            FaultModelSpec(name="cosmic_ray")

    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            FaultModelSpec(name="burst", params={"length": 8})

    def test_stuck_value_domain(self):
        with pytest.raises(ValueError, match="0 or 1"):
            FaultModelSpec(name="stuck_at", params={"value": 2})

    def test_fixed_map_requires_bits(self):
        with pytest.raises(ValueError, match="'bits'"):
            FaultModelSpec(name="fixed_map")

    def test_fixed_map_rejects_duplicate_bits(self):
        with pytest.raises(ValueError, match="unique"):
            FaultModelSpec(name="fixed_map", params={"bits": [1, 1]})

    def test_targeted_bit_name_validated(self):
        with pytest.raises(ValueError, match="unknown bit position"):
            FaultModelSpec(name="targeted_bit", params={"bit": "parity"})


class TestCampaignSpecValidation:
    def test_defaults(self):
        spec = CampaignSpec(name="s")
        assert spec.campaign == "weight"
        assert spec.variant == "unprotected"
        assert spec.fault_model.name == "random_bitflip"
        assert spec.rates[0] < spec.rates[-1]

    @pytest.mark.parametrize(
        "kwargs,pattern",
        [
            ({"name": ""}, "non-empty"),
            ({"name": "s", "model": "resnet"}, "unknown model"),
            ({"name": "s", "campaign": "voltage"}, "unknown campaign"),
            ({"name": "s", "variant": "magic"}, "unknown mitigation"),
            ({"name": "s", "rates": ()}, "non-empty"),
            ({"name": "s", "rates": (1e-4, 1e-5)}, "increasing"),
            ({"name": "s", "rates": (0.0, 1e-5)}, "positive"),
            ({"name": "s", "trials": 0}, "positive"),
            ({"name": "s", "split": "train"}, "split"),
        ],
    )
    def test_field_validation(self, kwargs, pattern):
        with pytest.raises(ValueError, match=pattern):
            CampaignSpec(**kwargs)

    def test_redundancy_requires_weight_campaign(self):
        with pytest.raises(ValueError, match="campaign 'weight'"):
            CampaignSpec(name="s", campaign="quantized", variant="ecc")

    def test_redundancy_requires_random_bitflip(self):
        with pytest.raises(ValueError, match="random_bitflip"):
            CampaignSpec(name="s", variant="tmr", fault_model="stuck_at")

    def test_fault_model_campaign_compatibility(self):
        with pytest.raises(ValueError, match="does not support"):
            CampaignSpec(name="s", campaign="activation", fault_model="stuck_at")

    def test_targeted_bit_width_checked_at_parse_time(self):
        # The campaign kind fixes the word width, so an impossible bit
        # position must fail at parse time, not mid-sweep in a worker.
        with pytest.raises(ValueError, match="8-bit"):
            CampaignSpec(
                name="s",
                campaign="quantized",
                fault_model={"name": "targeted_bit", "bit": "exponent_msb"},
            )
        with pytest.raises(ValueError, match="32-bit"):
            CampaignSpec(
                name="s", fault_model={"name": "targeted_bit", "bit": 40}
            )
        spec = CampaignSpec(
            name="s",
            campaign="quantized",
            fault_model={"name": "targeted_bit", "bit": "sign"},
        )
        assert spec.fault_model.params == {"bit": "sign"}

    def test_layers_only_for_activation(self):
        with pytest.raises(ValueError, match="activation"):
            CampaignSpec(name="s", campaign="weight", layers=("CONV-1",))
        spec = CampaignSpec(name="s", campaign="activation", layers=["CONV-1"])
        assert spec.layers == ("CONV-1",)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown spec field"):
            CampaignSpec.from_dict({"name": "s", "fault_rate": 1e-5})

    def test_shrunk_keeps_shape_and_truncates_sweep(self):
        spec = CampaignSpec(
            name="s", fault_model="stuck_at", trials=10, eval_images=200
        )
        small = spec.shrunk(rates=2, trials=1, eval_images=16)
        assert small.fault_model == spec.fault_model
        assert small.rates == (spec.rates[0], spec.rates[-1])
        assert small.trials == 1 and small.eval_images == 16


_RATE = st.floats(1e-9, 1e-2, allow_nan=False, allow_infinity=False)


def _spec_dicts():
    """Valid (cross-field-consistent) spec mappings for round-trip tests."""
    fault_models = st.one_of(
        st.just({"name": "random_bitflip"}),
        st.builds(
            lambda v: {"name": "stuck_at", "value": v}, st.sampled_from([0, 1])
        ),
        st.builds(
            lambda n: {"name": "burst", "burst_length": n}, st.integers(1, 64)
        ),
        st.builds(
            lambda b: {"name": "targeted_bit", "bit": b},
            st.one_of(st.integers(0, 7), st.just("sign")),
        ),
    )
    return st.builds(
        lambda name, campaign, fault_model, rates, trials, seed, images: {
            "name": name,
            "campaign": campaign,
            "fault_model": fault_model,
            "rates": sorted(set(rates)),
            "trials": trials,
            "seed": seed,
            "eval_images": images,
        },
        name=st.text(
            alphabet="abcdefghijklmnopqrstuvwxyz0123456789-_/", min_size=1, max_size=24
        ),
        campaign=st.sampled_from(["weight", "quantized"]),
        fault_model=fault_models,
        rates=st.lists(_RATE, min_size=1, max_size=6, unique=True),
        trials=st.integers(1, 50),
        seed=st.integers(0, 2**31),
        images=st.integers(1, 500),
    )


class TestRoundTripProperties:
    @settings(max_examples=60, deadline=None)
    @given(payload=_spec_dicts())
    def test_to_dict_from_dict_round_trip(self, payload):
        spec = CampaignSpec.from_dict(payload)
        assert CampaignSpec.from_dict(spec.to_dict()) == spec

    @settings(max_examples=30, deadline=None)
    @given(payload=_spec_dicts())
    def test_json_serialization_round_trip(self, payload):
        spec = CampaignSpec.from_dict(payload)
        rehydrated = CampaignSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rehydrated == spec

    @settings(max_examples=30, deadline=None)
    @given(payload=_spec_dicts())
    def test_round_trip_through_suite_parser(self, payload):
        suite = parse_suite({"scenarios": [CampaignSpec.from_dict(payload).to_dict()]})
        assert suite.specs == (CampaignSpec.from_dict(payload),)


class TestGridExpansion:
    def test_no_grid_yields_single_spec(self):
        assert len(expand_entry({"name": "s"})) == 1

    def test_defaults_merge_under_entry(self):
        (spec,) = expand_entry({"name": "s", "trials": 9}, {"trials": 2, "seed": 5})
        assert spec.trials == 9 and spec.seed == 5

    def test_grid_cannot_expand_name(self):
        with pytest.raises(ValueError, match="name"):
            expand_entry({"name": "s", "grid": {"name": ["a", "b"]}})

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            expand_entry({"name": "s", "grid": {"trials": []}})

    @settings(max_examples=40, deadline=None)
    @given(
        trials=st.lists(st.integers(1, 20), min_size=1, max_size=3, unique=True),
        seeds=st.lists(st.integers(0, 99), min_size=1, max_size=3, unique=True),
        campaigns=st.lists(
            st.sampled_from(["weight", "quantized"]),
            min_size=1,
            max_size=2,
            unique=True,
        ),
    )
    def test_cross_product_property(self, trials, seeds, campaigns):
        specs = expand_entry(
            {
                "name": "m",
                "eval_images": 32,
                "grid": {
                    "trials": trials,
                    "seed": seeds,
                    "campaign": campaigns,
                },
            }
        )
        assert len(specs) == len(trials) * len(seeds) * len(campaigns)
        names = {spec.name for spec in specs}
        assert len(names) == len(specs)  # expansion names are unique
        combos = {(spec.trials, spec.seed, spec.campaign) for spec in specs}
        assert combos == {
            (t, s, c) for t in trials for s in seeds for c in campaigns
        }
        assert all(spec.eval_images == 32 for spec in specs)
        assert all(spec.name.startswith("m/") for spec in specs)


class TestSuiteParsing:
    def test_bare_list(self):
        suite = parse_suite([{"name": "a"}, {"name": "b"}])
        assert [spec.name for spec in suite.specs] == ["a", "b"]

    def test_single_mapping(self):
        suite = parse_suite({"name": "solo"})
        assert suite.specs[0].name == "solo"

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            parse_suite([{"name": "a"}, {"name": "a"}])

    def test_unknown_suite_key_rejected(self):
        with pytest.raises(ValueError, match="suite-level"):
            parse_suite({"scenarios": [{"name": "a"}], "worker": 2})

    def test_workers_validated(self):
        with pytest.raises(ValueError, match="workers"):
            parse_suite({"scenarios": [{"name": "a"}], "workers": -1})
        assert parse_suite({"scenarios": [{"name": "a"}], "workers": 2}).workers == 2

    def test_yaml_file_round_trip(self, tmp_path):
        yaml = pytest.importorskip("yaml")
        payload = {
            "workers": 2,
            "defaults": {"trials": 4},
            "scenarios": [{"name": "s", "grid": {"seed": [1, 2]}}],
        }
        path = tmp_path / "suite.yaml"
        path.write_text(yaml.safe_dump(payload))
        suite = load_scenarios(path)
        assert suite.name == "suite" and suite.workers == 2
        assert [spec.seed for spec in suite.specs] == [1, 2]
        assert all(spec.trials == 4 for spec in suite.specs)

    def test_json_file(self, tmp_path):
        path = tmp_path / "suite.json"
        path.write_text(json.dumps([{"name": "a", "trials": 2}]))
        assert load_scenarios(path).specs[0].trials == 2

    def test_unsupported_suffix(self, tmp_path):
        path = tmp_path / "suite.toml"
        path.write_text("x = 1")
        with pytest.raises(ValueError, match="suffix"):
            load_scenarios(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_scenarios(tmp_path / "nope.yaml")


# --------------------------------------------------------------------- #
# fault-model samplers over both bit spaces
# --------------------------------------------------------------------- #


class TestSpecFaultSampler:
    @pytest.fixture(scope="class")
    def float_memory(self):
        from repro.hw.memory import WeightMemory

        model = LeNet5(seed=0)
        return WeightMemory.from_model(model)

    @pytest.fixture(scope="class")
    def int8_memory(self, float_memory):
        from repro.hw.quant import QuantizedWeightMemory

        return QuantizedWeightMemory(float_memory)

    def test_stuck_at_ops(self, float_memory):
        from repro.hw.faultmodels import OP_STUCK0

        sampler = SpecFaultSampler("stuck_at", {"value": 0})
        faults = sampler(float_memory, 1e-4, np.random.default_rng(0))
        assert len(faults) > 0
        assert (faults.operations == OP_STUCK0).all()

    def test_burst_budget_matches_rate(self, float_memory):
        sampler = SpecFaultSampler("burst", {"burst_length": 8})
        rate = 1e-4
        faults = sampler(float_memory, rate, np.random.default_rng(1))
        expected = round(rate * float_memory.total_bits / 8) * 8
        assert 0 < len(faults) <= expected

    def test_targeted_bit_positions_float32(self, float_memory):
        sampler = SpecFaultSampler("targeted_bit", {"bit": "exponent_msb"})
        faults = sampler(float_memory, 1e-3, np.random.default_rng(2))
        assert len(faults) == round(1e-3 * float_memory.total_words)
        assert (faults.bit_indices % 32 == 30).all()

    def test_targeted_sign_resolves_per_word_width(self, float_memory, int8_memory):
        sampler = SpecFaultSampler("targeted_bit", {"bit": "sign"})
        rng = np.random.default_rng(3)
        float_faults = sampler(float_memory, 1e-3, rng)
        int8_faults = sampler(int8_memory, 1e-3, rng)
        assert (float_faults.bit_indices % 32 == 31).all()
        assert (int8_faults.bit_indices % 8 == 7).all()

    def test_float32_field_names_rejected_for_int8(self, int8_memory):
        sampler = SpecFaultSampler("targeted_bit", {"bit": "exponent_msb"})
        with pytest.raises(ValueError, match="8-bit"):
            sampler(int8_memory, 1e-3, np.random.default_rng(4))

    def test_fixed_map_ignores_rate_and_rng(self, float_memory):
        sampler = SpecFaultSampler("fixed_map", {"bits": [1, 5, 9], "op": "stuck1"})
        first = sampler(float_memory, 1e-7, np.random.default_rng(5))
        second = sampler(float_memory, 1e-3, np.random.default_rng(99))
        assert np.array_equal(first.bit_indices, second.bit_indices)
        assert np.array_equal(first.operations, second.operations)

    def test_sampler_pickles(self):
        import pickle

        sampler = SpecFaultSampler("burst", {"burst_length": 4})
        clone = pickle.loads(pickle.dumps(sampler))
        assert clone.name == "burst" and clone.params == {"burst_length": 4}

    def test_registry_covers_all_campaign_kinds(self):
        for info in FAULT_MODELS.values():
            assert set(info.campaigns) <= set(CAMPAIGN_KINDS)
        assert set(MITIGATION_VARIANTS) >= {"unprotected", "ftclipact"}


# --------------------------------------------------------------------- #
# compiler: bit identity with the direct API, at workers 1 and 2
# --------------------------------------------------------------------- #


class TestSpecRunsMatchDirectAPI:
    def test_bit_identity_all_campaign_kinds(self, tiny_configs):
        from repro.core.campaign import CampaignConfig, run_campaign
        from repro.core.quantized import run_quantized_campaign
        from repro.experiments import clone_model
        from repro.hw.actfaults import run_activation_campaign
        from repro.hw.memory import WeightMemory

        rates, trials, seed, n_images, batch = (1e-5, 1e-4), 2, 3, 48, 32
        context = ScenarioContext()
        bundle = context.bundle("lenet5")
        images, labels = bundle.test_set.arrays()
        images, labels = images[:n_images], labels[:n_images]
        config = CampaignConfig(
            fault_rates=rates, trials=trials, seed=seed, batch_size=batch
        )

        common = dict(
            model="lenet5",
            rates=rates,
            trials=trials,
            seed=seed,
            eval_images=n_images,
            batch_size=batch,
        )
        specs = [
            CampaignSpec(name="w", campaign="weight", **common),
            CampaignSpec(
                name="s", campaign="weight", fault_model={"name": "stuck_at", "value": 1},
                **common,
            ),
            CampaignSpec(name="q", campaign="quantized", **common),
            CampaignSpec(name="a", campaign="activation", **common),
        ]

        # Direct API calls over an independent clone of the same bundle.
        model = clone_model(bundle)
        memory = WeightMemory.from_model(model)
        direct = [
            run_campaign(model, memory, images, labels, config),
            run_campaign(
                model, memory, images, labels, config,
                sampler=SpecFaultSampler("stuck_at", {"value": 1}),
            ),
            run_quantized_campaign(model, memory, images, labels, config),
            run_activation_campaign(model, images, labels, config),
        ]

        for workers in (1, 2):
            results = run_scenarios(specs, workers=workers, context=context)
            for spec, result, expected in zip(specs, results, direct):
                assert np.array_equal(
                    result.curve.accuracies, expected.accuracies
                ), f"{spec.name} diverged from the direct API at workers={workers}"
                assert result.curve.clean_accuracy == pytest.approx(
                    expected.clean_accuracy
                )

    def test_checkpoint_resumes_whole_matrix(self, tiny_configs, tmp_path):
        context = ScenarioContext()
        common = dict(
            model="lenet5", rates=(1e-5, 1e-4), trials=2, seed=5,
            eval_images=32, batch_size=32,
        )
        specs = [
            CampaignSpec(name="w", campaign="weight", **common),
            CampaignSpec(name="q", campaign="quantized", **common),
        ]
        checkpoint = tmp_path / "matrix.json"
        first = run_scenarios(specs, checkpoint=checkpoint, context=context)
        assert checkpoint.exists()

        replayed = []
        second = run_scenarios(
            specs,
            checkpoint=checkpoint,
            context=context,
            progress=lambda cell: replayed.append(cell.from_checkpoint),
        )
        assert replayed and all(replayed)  # nothing re-ran
        for before, after in zip(first, second):
            assert np.array_equal(before.curve.accuracies, after.curve.accuracies)

    def test_out_dir_writes_results_and_summary(self, tiny_configs, tmp_path):
        context = ScenarioContext()
        specs = [
            CampaignSpec(
                name="grid/x=1", model="lenet5", rates=(1e-4,), trials=1,
                eval_images=16, batch_size=16,
            )
        ]
        out = tmp_path / "out"
        results = run_scenarios(specs, context=context, out_dir=out)
        summary = json.loads((out / "summary.json").read_text())
        assert summary["count"] == 1
        (row,) = summary["scenarios"]
        assert row["name"] == "grid/x=1"
        scenario_payload = json.loads((out / row["file"]).read_text())
        assert scenario_payload["spec"]["name"] == "grid/x=1"
        assert scenario_payload["accuracies"] == results[0].curve.accuracies.tolist()

    def test_duplicate_names_rejected_at_run(self, tiny_configs):
        spec = CampaignSpec(name="dup", model="lenet5", rates=(1e-4,), trials=1)
        with pytest.raises(ValueError, match="unique"):
            run_scenarios([spec, spec])


class TestBundledRegistry:
    def test_names_are_sorted_and_nonempty(self):
        names = bundled_spec_names()
        assert names == sorted(names) and names

    def test_unknown_bundled_name(self):
        from repro.scenarios import bundled_spec_path

        with pytest.raises(KeyError, match="no bundled"):
            bundled_spec_path("does_not_exist")
