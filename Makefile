# Test-suite entry points (see pytest.ini for the slow-marker tiering).
#
#   make fast   - the ~25s inner loop: unit + property tests only,
#                 including the suffix-engine timing smoke (a perf
#                 regression in the hot path fails here, not in CI-hours)
#   make test   - the full tier-1 gate, including figure benchmarks
#   make bench  - just the figure/infrastructure benchmarks
#                 (BENCH_campaign.json history + BENCH_forward.json)
#   make docs-check - documentation consistency only (README/DESIGN
#                 references, the REPRO_* env-var table in
#                 docs/MEMORY_MODEL.md vs src/, the scenario-spec
#                 schema/fault-model/cookbook tables in
#                 docs/SCENARIOS.md vs repro.scenarios); also runs
#                 inside fast
#   make scenarios-smoke - run every bundled scenario spec end-to-end
#                 on tiny synthetic data (part of the fast tier)
#   make shard-smoke - split a bundled smoke suite 3 ways, run each
#                 shard in a separate process, merge, and assert the
#                 merged summary.json is byte-identical to the
#                 unsharded run (part of the fast tier; see
#                 docs/SCENARIOS.md "Sharded & segmented runs")
#   make chaos-smoke - run a bundled smoke suite under aggressive
#                 chaos injection (worker kills, exceptions, timeouts;
#                 see docs/FAULT_TOLERANCE.md) and assert the output
#                 is byte-identical to the chaos-free run (part of the
#                 fast tier)
#   make report-smoke - shard a bundled smoke suite 2 ways through the
#                 real CLI, merge, build the HTML report, and assert
#                 the per-cell store byte-matches the unsharded run
#                 and the report matches its golden rendering (part of
#                 the fast tier; see docs/RESULTS.md)
#   make serve-smoke - start the `repro serve` daemon as a real
#                 subprocess, submit a bundled smoke suite twice via
#                 `repro submit`, and assert the hit/miss counters, the
#                 byte-equality of the fetched run against the direct
#                 CLI run, and a clean SIGTERM shutdown with no leaked
#                 shm segments (part of the fast tier; see
#                 docs/SERVICE.md)
#   make stats  - just the statistical-correctness simulations for the
#                 adaptive stopping rule (interval coverage, sequential
#                 stopping, importance-sampling unbiasedness); these are
#                 pure-numpy, fixed-seed, and also run inside fast
#
# REPRO_WORKERS=N fans every campaign in the suite across N worker
# processes (0 = one per core); REPRO_NO_SUFFIX=1 disables suffix
# re-execution; REPRO_NO_SHM_VIEWS=1 disables zero-copy tensor views;
# results are bit-identical either way (see docs/MEMORY_MODEL.md).

PYTHON ?= python
PYTEST = PYTHONPATH=src $(PYTHON) -m pytest

.PHONY: fast test bench docs-check scenarios-smoke shard-smoke chaos-smoke report-smoke serve-smoke stats

fast: docs-check
	$(PYTEST) -q -m "not slow"

test:
	$(PYTEST) -x -q

bench:
	$(PYTEST) -q benchmarks

docs-check:
	$(PYTEST) -q tests/test_docs_consistency.py

scenarios-smoke:
	$(PYTEST) -q tests/test_scenarios_smoke.py

shard-smoke:
	$(PYTEST) -q tests/test_shard_smoke.py

chaos-smoke:
	$(PYTEST) -q tests/test_chaos_smoke.py

report-smoke:
	$(PYTEST) -q tests/test_report_smoke.py

serve-smoke:
	$(PYTEST) -q tests/test_serve_smoke.py

stats:
	$(PYTEST) -q -m stats
