"""Activation distributions under faults (paper Fig. 3b-d, f-h, j-l).

Captures a layer's post-activation output distribution while faults are
injected into that layer's weights, demonstrating the paper's key
observation: at higher fault rates the distribution grows enormous
high-intensity outliers (``ACT_max`` jumps by tens of orders of
magnitude), because exponent-bit flips inflate weights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro import nn
from repro.core.swap import find_activation_sites
from repro.hw.faultmodels import RandomBitFlip
from repro.hw.injector import FaultInjector
from repro.hw.memory import WeightMemory
from repro.utils.rng import SeedTree

__all__ = ["FaultyActivationStats", "capture_activation_distribution"]


@dataclass
class FaultyActivationStats:
    """One layer's activation distribution at one fault rate."""

    layer_name: str
    fault_rate: float
    act_max: float
    mean: float
    fraction_extreme: float  # fraction of activations above `extreme_cutoff`
    extreme_cutoff: float
    histogram_counts: np.ndarray
    histogram_edges: np.ndarray  # log10(1 + activation) bin edges
    num_values: int


def _capture_layer_output(
    model: nn.Module, layer_name: str, images: np.ndarray
) -> np.ndarray:
    """Forward ``images`` and return the named layer's activation output."""
    sites = {site.layer_name: site for site in find_activation_sites(model)}
    if layer_name not in sites:
        raise KeyError(
            f"layer {layer_name!r} has no activation site; available: "
            f"{sorted(sites)!r}"
        )
    captured: list[np.ndarray] = []

    def hook(module: nn.Module, inputs: np.ndarray, output: np.ndarray) -> None:
        captured.append(np.asarray(output))

    handle = sites[layer_name].activation.register_forward_hook(hook)
    try:
        with np.errstate(over="ignore", invalid="ignore"):
            model(images)
    finally:
        handle.remove()
    return captured[-1]


def capture_activation_distribution(
    model: nn.Module,
    layer_name: str,
    images: np.ndarray,
    fault_rates: Sequence[float],
    seed: int = 0,
    bins: int = 40,
    extreme_cutoff: float = 1e3,
) -> list[FaultyActivationStats]:
    """Fig. 3's distribution panels: one stats record per fault rate.

    Rate 0 entries (include ``0.0`` in ``fault_rates``) give the clean
    distribution for comparison.  Faults are injected into the *named
    layer's* weights only, mirroring the paper's per-layer setup.
    Histograms are over ``log10(1 + activation)`` because faulty
    activations span ~40 orders of magnitude.
    """
    model.eval()
    sites = {site.layer_name for site in find_activation_sites(model)}
    if layer_name not in sites:
        raise KeyError(
            f"layer {layer_name!r} has no activation site; available: "
            f"{sorted(sites)!r}"
        )
    tree = SeedTree(seed)
    memory = WeightMemory.from_model(model, layers=[layer_name])
    injector = FaultInjector(memory)

    results: list[FaultyActivationStats] = []
    for index, rate in enumerate(fault_rates):
        rate = float(rate)
        if rate < 0:
            raise ValueError(f"fault rates must be non-negative, got {rate}")
        if rate == 0.0:
            output = _capture_layer_output(model, layer_name, images)
        else:
            fault_model = RandomBitFlip(rate)
            rng = tree.generator(f"rate/{index}")
            with injector.session(fault_model, rng):
                output = _capture_layer_output(model, layer_name, images)

        flat = np.asarray(output, dtype=np.float64).reshape(-1)
        finite = flat[np.isfinite(flat)]
        act_max = float(finite.max()) if finite.size else float("inf")
        log_values = np.log10(1.0 + np.maximum(flat[np.isfinite(flat)], 0.0))
        counts, edges = np.histogram(log_values, bins=bins)
        results.append(
            FaultyActivationStats(
                layer_name=layer_name,
                fault_rate=rate,
                act_max=act_max if np.isfinite(flat).all() else float("inf"),
                mean=float(finite.mean()) if finite.size else float("nan"),
                fraction_extreme=float((flat > extreme_cutoff).mean()),
                extreme_cutoff=float(extreme_cutoff),
                histogram_counts=counts,
                histogram_edges=edges,
                num_values=int(flat.size),
            )
        )
    return results
