"""Shared-memory tensor plane: zero-copy shipping of campaign state.

This module is the transport layer of the parallel campaign executor
(:mod:`repro.core.executor`).  It grew out of a bytes-shipping helper
into a **tensor plane**: one :mod:`multiprocessing.shared_memory` segment
per host holds, at known offsets, every large tensor a sweep needs —
model weight arrays, evaluation arrays, and the suffix engine's cached
clean activations — plus the (small) in-band pickle streams that tie
them together.  Worker processes attach the segment by name and map each
tensor as a **read-only numpy view**, so a worker never deserializes a
private copy of the weights; mutation is handled upstream by
copy-on-write (see :meth:`repro.hw.memory.WeightMemory.materialize` and
``docs/MEMORY_MODEL.md`` for the full memory model).

The mechanism is pickle protocol 5's out-of-band buffers:

* :func:`pack_object` serializes an object once, extracting every
  contiguous numpy array into a :class:`pickle.PickleBuffer` — the
  in-band stream keeps only dtype/shape metadata, and the buffers still
  reference the caller's live arrays (no copy yet).
* :func:`ship_units` lays all packed units out in one segment — the
  *region table* maps each unit's stream and each of its tensor buffers
  to an ``(offset, size)`` span — and returns a picklable
  :class:`ShippedPlane` address.
* :meth:`ShippedPlane.open` attaches (once per worker per generation)
  and :meth:`PlaneView.load` reconstructs a unit with
  ``pickle.loads(stream, buffers=...)`` where each buffer is a
  *read-only memoryview slice* of the mapped segment — numpy rebuilds
  its arrays directly over those slices, copying nothing.

Degradation is always graceful and bit-identical:

* **Shared memory unavailable** (no ``/dev/shm``, permissions, missing
  ``_posixshmem``, segment creation fails): the plane's bytes travel
  inline through the pickled task address instead — one private copy
  per worker, exactly the pre-shared-memory transport.  Loads still
  reconstruct read-only views (into the worker's private bytes), so the
  copy-on-write discipline is exercised identically.
* **``REPRO_NO_SHM_VIEWS=1``**: the escape hatch.  Packing and shipping
  are unchanged (so checkpoint CRCs match across modes), but
  :meth:`PlaneView.load` hands numpy *writable private copies* of every
  buffer — the historical deserializing path, byte for byte.

Lifecycle and cleanup: the creating process owns the segment and must
call :meth:`Shipment.release` (close + unlink) exactly once;
:class:`CampaignExecutor` does so in a ``finally`` even when a worker
raises or the sweep is interrupted, and :class:`Shipment` carries a
best-effort ``__del__`` backstop.  Workers detach on generation change;
a detach that would invalidate still-live views is skipped (the mapping
then lives until process exit — the segment itself is already unlinked,
so the memory is reclaimed when the last mapping goes away).
"""

from __future__ import annotations

import os
import pickle
import zlib
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

__all__ = [
    "ShippedBytes",
    "ShippedBuffer",
    "Shipment",
    "ship_bytes",
    "shared_memory_available",
    "shared_memory_writable",
    "shm_views_disabled",
    "PackedUnit",
    "pack_object",
    "UnitSpan",
    "ShippedPlane",
    "PlaneView",
    "PlaneShipment",
    "ship_units",
]

try:  # pragma: no cover - import succeeds on all supported platforms
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - exotic builds without _posixshmem
    _shared_memory = None

_NO_VIEWS_ENV = "REPRO_NO_SHM_VIEWS"


def shared_memory_available() -> bool:
    """Whether this interpreter can create shared-memory segments."""
    return _shared_memory is not None


def shm_views_disabled() -> bool:
    """Whether ``REPRO_NO_SHM_VIEWS`` forces private-copy deserialization.

    The escape hatch of the zero-copy tensor plane: packing, shipping
    and checkpoint CRCs are unchanged, but every :meth:`PlaneView.load`
    copies each tensor buffer into private writable memory instead of
    mapping a read-only view — the historical per-worker deserializing
    path, bit-identical by construction.
    """
    return os.environ.get(_NO_VIEWS_ENV, "").strip() not in ("", "0")


def _create_segment(size: int):
    """Create a shared-memory segment of ``size`` bytes, or ``None``.

    ``None`` — shared memory unavailable, non-positive size, or creation
    failed (e.g. ``/dev/shm`` missing or full) — means the caller should
    fall back to the inline transport.
    """
    if _shared_memory is None or size <= 0:
        return None
    try:
        return _shared_memory.SharedMemory(create=True, size=size)
    except OSError:
        return None


def shared_memory_writable() -> bool:
    """Whether a segment can actually be created right now.

    Stronger than :func:`shared_memory_available` (which only checks
    importability): probes a 1-byte segment, so a missing or full
    ``/dev/shm`` is detected *before* a caller pays for work — like the
    executor's parent-side clean passes — that only helps when the plane
    lands in shared memory.
    """
    segment = _create_segment(1)
    if segment is None:
        return False
    segment.close()
    segment.unlink()
    return True


def _attach_segment(name: str):
    """Attach to an existing segment by name.

    Pool workers inherit the parent's resource tracker, so the attach-side
    ``register`` (bpo-39959) collapses into the parent's own registration
    and the segment's lifetime stays owned by the creating process, which
    unlinks it after the pool shuts down.
    """
    return _shared_memory.SharedMemory(name=name)


# Attachments whose detach was skipped because numpy views were still
# live (see ShippedBuffer.close).  Keeping the handles referenced stops
# their __del__ from re-attempting the doomed unmap at GC time; the
# mappings are reclaimed by the OS at process exit, and the segments
# themselves are unlinked by their creating process regardless.
_LEAKED_MAPPINGS: "list" = []


class ShippedBuffer:
    """A worker-side view of a shipped blob (attach/detach lifecycle)."""

    def __init__(self, buffer, segment=None):
        self._buffer = buffer
        self._segment = segment

    @property
    def buffer(self):
        """The blob as a sliceable read buffer (memoryview or bytes)."""
        if self._buffer is None:
            raise ValueError("shipped buffer is closed")
        return self._buffer

    def close(self) -> None:
        """Detach from the segment (no-op for the inline transport).

        If numpy views created over the segment are still alive the
        unmap would invalidate them; the detach is then skipped (see the
        module docstring: the parent has already unlinked the segment,
        so the memory is reclaimed when the process exits).
        """
        self._buffer = None
        if self._segment is not None:
            segment, self._segment = self._segment, None
            try:
                segment.close()
            except BufferError:
                _LEAKED_MAPPINGS.append(segment)


@dataclass(frozen=True)
class ShippedBytes:
    """Picklable address of a payload blob.

    Either the name of a shared-memory segment (``segment``) or, when the
    fallback transport is in use, the payload bytes themselves
    (``inline`` — any picklable bytes-like object).
    """

    segment: "str | None"
    size: int
    inline: "bytes | bytearray | None" = None

    @property
    def via_shared_memory(self) -> bool:
        """Whether the blob travels through a shared-memory segment."""
        return self.segment is not None

    def open(self) -> ShippedBuffer:
        """Attach to the blob; the caller must :meth:`~ShippedBuffer.close` it."""
        if self.segment is None:
            return ShippedBuffer(self.inline)
        handle = _attach_segment(self.segment)
        return ShippedBuffer(memoryview(handle.buf)[: self.size], handle)


class Shipment:
    """Parent-side owner of a shipped blob; release() frees the segment."""

    def __init__(self, ref: ShippedBytes, segment=None):
        self.ref = ref
        self._segment = segment

    def release(self) -> None:
        """Unlink the segment (idempotent; no-op for inline transport)."""
        if self._segment is not None:
            segment, self._segment = self._segment, None
            segment.close()
            segment.unlink()

    def __del__(self) -> None:  # pragma: no cover - GC-timing dependent
        # Backstop only: owners release() deterministically (the executor
        # does so in a finally); this catches abandoned shipments so an
        # interrupted caller cannot leak a segment for the host's lifetime.
        try:
            self.release()
        except Exception:
            pass


def ship_bytes(data: bytes) -> Shipment:
    """Place ``data`` where worker processes can read it once per host.

    Prefers one shared-memory segment (written once, attached by every
    worker); falls back to inline bytes (copied to each worker through
    the pool initializer's pickled arguments) when shared memory is
    unavailable or segment creation fails.
    """
    segment = _create_segment(len(data))
    if segment is not None:
        try:
            segment.buf[: len(data)] = data
        except BaseException:  # pragma: no cover - partial-write cleanup
            segment.close()
            segment.unlink()
            raise
        return Shipment(
            ShippedBytes(segment=segment.name, size=len(data)), segment
        )
    return Shipment(ShippedBytes(segment=None, size=len(data), inline=data))


# --------------------------------------------------------------------- #
# the tensor plane
# --------------------------------------------------------------------- #


class PackedUnit:
    """One object serialized with its tensors extracted out-of-band.

    ``stream`` is the in-band pickle (metadata, scalars, python objects);
    ``buffers`` are :class:`pickle.PickleBuffer` handles still referencing
    the caller's live arrays — nothing is copied until the unit is laid
    out in a segment by :func:`ship_units`.  The unit is parent-side
    only (PickleBuffer does not pickle); what ships is its span in the
    plane's region table.
    """

    __slots__ = ("stream", "buffers")

    def __init__(self, stream: bytes, buffers: "Sequence[pickle.PickleBuffer]"):
        self.stream = stream
        self.buffers = tuple(buffers)

    @property
    def nbytes(self) -> int:
        """Total payload size: in-band stream plus every tensor buffer."""
        return len(self.stream) + sum(
            buffer.raw().nbytes for buffer in self.buffers
        )

    def crc32(self) -> int:
        """CRC over the stream *and* every buffer, in order.

        Covers exactly the bytes a plain in-band pickle would contain,
        so the checksum fingerprints the full campaign content; it is
        identical across zero-copy on/off (packing never changes — only
        how workers load).
        """
        crc = zlib.crc32(self.stream)
        for buffer in self.buffers:
            crc = zlib.crc32(buffer.raw(), crc)
        return crc

    def unpack_copy(self) -> Any:
        """Reconstruct a fully private, writable copy of the object.

        Each buffer is copied into a fresh ``bytearray``, so the result
        shares no memory with the original arrays — the parent-side
        snapshot path (:meth:`LayerAUCEvaluator.evaluate_many` detaches
        per-threshold model copies this way).
        """
        return pickle.loads(
            self.stream,
            buffers=[bytearray(buffer.raw()) for buffer in self.buffers],
        )


def pack_object(obj: Any) -> PackedUnit:
    """Serialize ``obj`` once, extracting contiguous arrays out-of-band.

    Uses pickle protocol 5 with a ``buffer_callback``: numpy serializes
    every C/F-contiguous array as a :class:`pickle.PickleBuffer`
    referencing the live data (non-contiguous arrays fall back in-band).
    The same packing feeds the worker payload, the checkpoint CRC and
    parent-side snapshot copies, so large models are serialized exactly
    once per run.
    """
    buffers: "list[pickle.PickleBuffer]" = []
    stream = pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)
    return PackedUnit(stream, buffers)


@dataclass(frozen=True)
class UnitSpan:
    """The region-table entry of one packed unit inside the plane.

    ``stream`` is the (offset, end) span of the unit's in-band pickle;
    ``buffers`` the spans of its out-of-band tensor regions, in pickle
    order.
    """

    name: str
    stream: "tuple[int, int]"
    buffers: "tuple[tuple[int, int], ...]"


@dataclass(frozen=True)
class ShippedPlane:
    """Picklable address of a tensor plane: payload blob + region table.

    ``payload`` locates the single per-host segment (or carries the
    bytes inline on the fallback transport); ``units`` is the region
    table, one :class:`UnitSpan` per packed unit, keyed by name (e.g.
    ``task/0``, ``suffix/0``).
    """

    payload: ShippedBytes
    units: "tuple[UnitSpan, ...]"

    @property
    def via_shared_memory(self) -> bool:
        """Whether the plane lives in a shared-memory segment."""
        return self.payload.via_shared_memory

    def names(self) -> "list[str]":
        """Region-table unit names, in layout order."""
        return [unit.name for unit in self.units]

    def open(self) -> "PlaneView":
        """Attach to the plane; the caller must :meth:`~PlaneView.close` it."""
        return PlaneView(self, self.payload.open())


class PlaneView:
    """A worker-side attachment of one :class:`ShippedPlane`.

    :meth:`load` reconstructs units on demand; by default every tensor
    comes back as a **read-only numpy view** over the mapped segment
    (zero-copy), unless ``REPRO_NO_SHM_VIEWS=1`` requests writable
    private copies.  Close when the generation ends; views created from
    this attachment must not be used afterwards.
    """

    def __init__(self, plane: ShippedPlane, shipped: ShippedBuffer):
        self._plane = plane
        self._shipped = shipped
        self._spans = {unit.name: unit for unit in plane.units}
        raw = shipped.buffer
        self._memory = raw if isinstance(raw, memoryview) else memoryview(raw)

    def __contains__(self, name: str) -> bool:
        return name in self._spans

    def load(self, name: str, copy: "bool | None" = None) -> Any:
        """Reconstruct the unit called ``name``.

        ``copy=None`` (default) consults :func:`shm_views_disabled`;
        ``copy=False`` forces zero-copy read-only views, ``copy=True``
        forces writable private copies.
        """
        if self._memory is None:
            raise ValueError("plane view is closed")
        unit = self._spans[name]
        if copy is None:
            copy = shm_views_disabled()
        start, end = unit.stream
        stream = self._memory[start:end]
        if copy:
            buffers: "list[Any]" = [
                bytearray(self._memory[a:b]) for a, b in unit.buffers
            ]
        else:
            buffers = [self._memory[a:b].toreadonly() for a, b in unit.buffers]
        return pickle.loads(stream, buffers=buffers)

    def close(self) -> None:
        """Detach from the segment (idempotent; see :meth:`ShippedBuffer.close`)."""
        self._memory = None
        if self._shipped is not None:
            shipped, self._shipped = self._shipped, None
            shipped.close()


class PlaneShipment:
    """Parent-side owner of a shipped plane; release() frees the segment."""

    def __init__(self, ref: ShippedPlane, shipment: Shipment):
        self.ref = ref
        self._shipment = shipment

    def release(self) -> None:
        """Unlink the plane's segment (idempotent)."""
        self._shipment.release()

    def __enter__(self) -> "PlaneShipment":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()


def ship_units(units: "Iterable[tuple[str, PackedUnit]]") -> PlaneShipment:
    """Lay packed units out in one per-host segment and return its address.

    Builds the region table (one :class:`UnitSpan` per unit: the in-band
    stream span followed by each tensor-buffer span), concatenates the
    bytes once into a shared-memory segment — or inline bytes on the
    fallback transport — and returns the parent-side owner.  The caller
    must :meth:`~PlaneShipment.release` it exactly once, in a ``finally``.
    """
    chunks: "list[Any]" = []
    spans: "list[UnitSpan]" = []
    offset = 0

    def place(chunk) -> "tuple[int, int]":
        nonlocal offset
        chunks.append(chunk)
        size = chunk.nbytes if isinstance(chunk, memoryview) else len(chunk)
        span = (offset, offset + size)
        offset += size
        return span

    for name, unit in units:
        stream_span = place(unit.stream)
        buffer_spans = tuple(
            place(buffer.raw().cast("B")) for buffer in unit.buffers
        )
        spans.append(UnitSpan(name=name, stream=stream_span, buffers=buffer_spans))

    def write_into(target) -> None:
        cursor = 0
        for chunk in chunks:
            size = chunk.nbytes if isinstance(chunk, memoryview) else len(chunk)
            target[cursor : cursor + size] = chunk
            cursor += size

    # Write each chunk straight into the segment: the plane's only full
    # copy is the mapped one (a multi-GB sweep would not survive the
    # transient join-then-copy the byte transport would need).
    segment = _create_segment(offset)
    if segment is not None:
        try:
            write_into(segment.buf)
        except BaseException:  # pragma: no cover - partial-write cleanup
            segment.close()
            segment.unlink()
            raise
        shipment = Shipment(
            ShippedBytes(segment=segment.name, size=offset), segment
        )
        return PlaneShipment(ShippedPlane(shipment.ref, tuple(spans)), shipment)

    data = bytearray(offset)
    write_into(data)
    # The bytearray itself travels inline (picklable, sliceable): a
    # bytes() conversion would transiently double the degraded path's
    # peak memory for nothing.  Loads stay read-only regardless —
    # PlaneView hands out .toreadonly() views in zero-copy mode.
    shipment = Shipment(ShippedBytes(segment=None, size=offset, inline=data))
    return PlaneShipment(ShippedPlane(shipment.ref, tuple(spans)), shipment)
