"""Tests for the training loop."""

import numpy as np
import pytest

from repro import nn
from repro.data import ArrayDataset, DataLoader, SyntheticCIFAR10
from repro.models import MLP
from repro.optim import SGD, Adam, StepLR, Trainer, evaluate_accuracy


def _toy_problem(n=200, seed=0):
    """Linearly separable 2-class problem in 8 dimensions."""
    rng = np.random.default_rng(seed)
    images = rng.standard_normal((n, 8)).astype(np.float32)
    labels = (images[:, 0] + images[:, 1] > 0).astype(np.int64)
    # Reshape to (N, 1, 1, 8) so Flatten-based models accept it.
    return ArrayDataset(images.reshape(n, 1, 1, 8), labels)


class TestTrainer:
    def test_loss_decreases(self):
        dataset = _toy_problem()
        model = MLP(8, 2, hidden=(16,), seed=0)
        trainer = Trainer(model, Adam(model.parameters(), lr=1e-2))
        history = trainer.fit(DataLoader(dataset, 32, shuffle=True, seed=0), epochs=8)
        losses = [epoch.train_loss for epoch in history.epochs]
        assert losses[-1] < losses[0]
        assert history.final_train_accuracy > 0.9

    def test_early_stopping_restores_best(self):
        dataset = _toy_problem()
        val = _toy_problem(80, seed=1)
        model = MLP(8, 2, hidden=(16,), seed=0)
        trainer = Trainer(model, Adam(model.parameters(), lr=1e-2))
        history = trainer.fit(
            DataLoader(dataset, 32, shuffle=True, seed=0),
            epochs=30,
            val_loader=DataLoader(val, 64),
            patience=2,
        )
        assert len(history.epochs) <= 30
        best = history.best_val_accuracy
        restored = evaluate_accuracy(model, DataLoader(val, 64))
        assert restored == pytest.approx(best, abs=1e-9)

    def test_model_left_in_eval_mode(self):
        dataset = _toy_problem()
        model = MLP(8, 2, hidden=(8,), seed=0)
        trainer = Trainer(model, SGD(model.parameters(), lr=0.1))
        trainer.fit(DataLoader(dataset, 64), epochs=1)
        assert not model.training

    def test_schedule_steps_per_epoch(self):
        dataset = _toy_problem()
        model = MLP(8, 2, hidden=(8,), seed=0)
        optimizer = SGD(model.parameters(), lr=1.0)
        schedule = StepLR(optimizer, step_size=1, gamma=0.5)
        trainer = Trainer(model, optimizer, schedule=schedule)
        history = trainer.fit(DataLoader(dataset, 64), epochs=3)
        lrs = [epoch.lr for epoch in history.epochs]
        assert lrs == pytest.approx([1.0, 0.5, 0.25])

    def test_grad_clip_bounds_norm(self):
        dataset = _toy_problem()
        model = MLP(8, 2, hidden=(8,), seed=0)
        optimizer = SGD(model.parameters(), lr=1e-3)
        trainer = Trainer(model, optimizer, grad_clip=1e-6)
        before = model.state_dict()
        trainer.fit(DataLoader(dataset, 64), epochs=1)
        after = model.state_dict()
        # Clipping to a tiny norm means weights barely move.
        total_move = sum(
            float(np.abs(after[k] - before[k]).sum()) for k in before
        )
        assert total_move < 1e-3

    def test_invalid_epochs(self):
        model = MLP(8, 2, hidden=(8,), seed=0)
        trainer = Trainer(model, SGD(model.parameters(), lr=0.1))
        with pytest.raises(ValueError):
            trainer.fit(DataLoader(_toy_problem(), 32), epochs=0)

    def test_invalid_grad_clip(self):
        model = MLP(8, 2, hidden=(8,), seed=0)
        with pytest.raises(ValueError):
            Trainer(model, SGD(model.parameters(), lr=0.1), grad_clip=0.0)

    def test_verbose_prints(self, capsys):
        dataset = _toy_problem(64)
        model = MLP(8, 2, hidden=(8,), seed=0)
        trainer = Trainer(model, SGD(model.parameters(), lr=0.1))
        trainer.fit(DataLoader(dataset, 64), epochs=1, verbose=True)
        assert "epoch" in capsys.readouterr().out


class TestEvaluateAccuracy:
    def test_perfect_model(self):
        images = np.zeros((10, 1, 1, 4), dtype=np.float32)
        images[:5, 0, 0, 0] = 10.0
        labels = np.asarray([0] * 5 + [1] * 5, dtype=np.int64)

        class Oracle(nn.Module):
            def forward(self, x):
                flat = x.reshape(x.shape[0], -1)
                return np.stack([flat[:, 0], 5.0 - flat[:, 0]], axis=1)

        accuracy = evaluate_accuracy(Oracle(), DataLoader(ArrayDataset(images, labels), 4))
        assert accuracy == 1.0

    def test_synthetic_training_reaches_high_accuracy(self):
        generator = SyntheticCIFAR10(image_size=8, seed=5)
        train = generator.dataset(400, "train")
        test = generator.dataset(100, "test")
        model = MLP(3 * 8 * 8, 10, hidden=(64,), seed=0)
        trainer = Trainer(model, Adam(model.parameters(), lr=2e-3))
        trainer.fit(DataLoader(train, 64, shuffle=True, seed=0), epochs=12)
        assert evaluate_accuracy(model, DataLoader(test, 64)) > 0.6
