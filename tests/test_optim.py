"""Tests for SGD, Adam and the optimizer base."""

import numpy as np
import pytest

from repro import nn
from repro.optim import SGD, Adam


def _quadratic_param(start=5.0):
    """Single scalar parameter with loss f(w) = w^2 / 2, grad = w."""
    return nn.Parameter(np.asarray([start], dtype=np.float32))


def _step(optimizer, param, times=1):
    for _ in range(times):
        param.zero_grad()
        param.accumulate_grad(param.data.copy())  # grad of w^2/2
        optimizer.step()


class TestOptimizerBase:
    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_non_parameter_rejected(self):
        with pytest.raises(TypeError):
            SGD([np.zeros(3)], lr=0.1)  # type: ignore[list-item]

    def test_non_positive_lr_rejected(self):
        with pytest.raises(ValueError):
            SGD([_quadratic_param()], lr=0.0)

    def test_zero_grad_clears(self):
        param = _quadratic_param()
        optimizer = SGD([param], lr=0.1)
        param.accumulate_grad(np.ones(1, dtype=np.float32))
        optimizer.zero_grad()
        assert param.grad is None

    def test_step_skips_missing_grad(self):
        param = _quadratic_param()
        before = param.data.copy()
        SGD([param], lr=0.1).step()
        np.testing.assert_array_equal(param.data, before)


class TestSGD:
    def test_converges_on_quadratic(self):
        param = _quadratic_param()
        optimizer = SGD([param], lr=0.1)
        _step(optimizer, param, times=100)
        assert abs(param.data[0]) < 1e-3

    def test_plain_update_rule(self):
        param = _quadratic_param(2.0)
        optimizer = SGD([param], lr=0.5)
        _step(optimizer, param)
        assert param.data[0] == pytest.approx(1.0)

    def test_momentum_accelerates(self):
        plain_param = _quadratic_param()
        momentum_param = _quadratic_param()
        plain = SGD([plain_param], lr=0.01)
        momentum = SGD([momentum_param], lr=0.01, momentum=0.9)
        _step(plain, plain_param, times=30)
        _step(momentum, momentum_param, times=30)
        assert abs(momentum_param.data[0]) < abs(plain_param.data[0])

    def test_weight_decay_shrinks_weights(self):
        param = nn.Parameter(np.asarray([1.0], dtype=np.float32))
        optimizer = SGD([param], lr=0.1, weight_decay=0.5)
        param.accumulate_grad(np.zeros(1, dtype=np.float32))
        optimizer.step()
        assert param.data[0] == pytest.approx(1.0 - 0.1 * 0.5)

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ValueError):
            SGD([_quadratic_param()], lr=0.1, nesterov=True)

    def test_nesterov_converges(self):
        param = _quadratic_param()
        optimizer = SGD([param], lr=0.05, momentum=0.9, nesterov=True)
        _step(optimizer, param, times=100)
        assert abs(param.data[0]) < 1e-2

    def test_requires_grad_false_frozen(self):
        param = nn.Parameter(np.asarray([3.0], dtype=np.float32), requires_grad=False)
        optimizer = SGD([param], lr=0.1)
        param.grad = np.ones(1, dtype=np.float32)
        optimizer.step()
        assert param.data[0] == 3.0


class TestAdam:
    def test_converges_on_quadratic(self):
        param = _quadratic_param()
        optimizer = Adam([param], lr=0.2)
        _step(optimizer, param, times=200)
        assert abs(param.data[0]) < 1e-2

    def test_first_step_magnitude_is_lr(self):
        # With bias correction, the first Adam step is ~lr regardless of
        # gradient scale.
        for scale in (1e-3, 1.0, 1e3):
            param = nn.Parameter(np.asarray([10.0], dtype=np.float32))
            optimizer = Adam([param], lr=0.1)
            param.accumulate_grad(np.asarray([scale], dtype=np.float32))
            optimizer.step()
            assert 10.0 - param.data[0] == pytest.approx(0.1, rel=1e-3)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([_quadratic_param()], betas=(1.0, 0.999))

    def test_invalid_eps(self):
        with pytest.raises(ValueError):
            Adam([_quadratic_param()], eps=0.0)

    def test_decoupled_weight_decay(self):
        param = nn.Parameter(np.asarray([1.0], dtype=np.float32))
        optimizer = Adam([param], lr=0.1, weight_decay=0.5, decoupled=True)
        param.accumulate_grad(np.zeros(1, dtype=np.float32))
        optimizer.step()
        assert param.data[0] == pytest.approx(1.0 - 0.1 * 0.5)

    def test_coupled_weight_decay_moves_through_moments(self):
        param = nn.Parameter(np.asarray([1.0], dtype=np.float32))
        optimizer = Adam([param], lr=0.1, weight_decay=0.5, decoupled=False)
        param.accumulate_grad(np.zeros(1, dtype=np.float32))
        optimizer.step()
        # Coupled decay behaves like a gradient: first step is ~lr.
        assert param.data[0] == pytest.approx(1.0 - 0.1, rel=1e-3)
