"""Tests for activation-distribution capture under faults (Fig. 3 panels)."""

import numpy as np
import pytest

from repro.analysis.activations import capture_activation_distribution


class TestCaptureDistribution:
    def test_clean_rate_matches_direct_forward(self, trained_mlp, mlp_eval_arrays):
        images, _ = mlp_eval_arrays
        stats = capture_activation_distribution(
            trained_mlp, "FC-1", images[:32], fault_rates=[0.0], seed=0
        )
        assert len(stats) == 1
        record = stats[0]
        assert record.fault_rate == 0.0
        assert record.layer_name == "FC-1"
        assert np.isfinite(record.act_max)
        assert record.num_values == 32 * 64  # batch x hidden width

    def test_act_max_explodes_with_fault_rate(self, trained_mlp, mlp_eval_arrays):
        """The paper's Fig. 3 observation: ACT_max jumps by tens of orders
        of magnitude once exponent bits get flipped."""
        images, _ = mlp_eval_arrays
        stats = capture_activation_distribution(
            trained_mlp, "FC-1", images[:32], fault_rates=[0.0, 3e-3], seed=1
        )
        clean, faulty = stats
        assert faulty.act_max > clean.act_max * 1e6

    def test_histogram_well_formed(self, trained_mlp, mlp_eval_arrays):
        images, _ = mlp_eval_arrays
        (record,) = capture_activation_distribution(
            trained_mlp, "FC-1", images[:16], fault_rates=[1e-3], seed=0, bins=20
        )
        assert record.histogram_counts.size == 20
        assert record.histogram_edges.size == 21
        assert record.histogram_counts.sum() == record.num_values

    def test_weights_restored(self, trained_mlp, mlp_eval_arrays):
        images, _ = mlp_eval_arrays
        before = trained_mlp.state_dict()
        capture_activation_distribution(
            trained_mlp, "FC-1", images[:16], fault_rates=[1e-3, 1e-2], seed=0
        )
        after = trained_mlp.state_dict()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])

    def test_unknown_layer_rejected(self, trained_mlp, mlp_eval_arrays):
        images, _ = mlp_eval_arrays
        with pytest.raises(KeyError):
            capture_activation_distribution(
                trained_mlp, "CONV-9", images[:8], fault_rates=[0.0]
            )

    def test_negative_rate_rejected(self, trained_mlp, mlp_eval_arrays):
        images, _ = mlp_eval_arrays
        with pytest.raises(ValueError):
            capture_activation_distribution(
                trained_mlp, "FC-1", images[:8], fault_rates=[-1e-6]
            )

    def test_fraction_extreme_grows(self, trained_mlp, mlp_eval_arrays):
        images, _ = mlp_eval_arrays
        stats = capture_activation_distribution(
            trained_mlp, "FC-1", images[:32], fault_rates=[0.0, 5e-3], seed=2
        )
        assert stats[1].fraction_extreme >= stats[0].fraction_extreme

    def test_deterministic(self, trained_mlp, mlp_eval_arrays):
        images, _ = mlp_eval_arrays
        a = capture_activation_distribution(
            trained_mlp, "FC-1", images[:16], fault_rates=[1e-3], seed=5
        )
        b = capture_activation_distribution(
            trained_mlp, "FC-1", images[:16], fault_rates=[1e-3], seed=5
        )
        assert a[0].act_max == b[0].act_max
        np.testing.assert_array_equal(a[0].histogram_counts, b[0].histogram_counts)
