"""Tests for activation profiling (Step 1)."""

import numpy as np
import pytest

from repro import nn
from repro.core.profiling import (
    ActivationProfiler,
    LayerActivationStats,
    profile_activations,
)
from repro.data import ArrayDataset, DataLoader
from repro.models import LeNet5


def _loader(n=32, seed=0):
    rng = np.random.default_rng(seed)
    images = rng.random((n, 3, 32, 32)).astype(np.float32)
    labels = rng.integers(0, 10, size=n).astype(np.int64)
    return DataLoader(ArrayDataset(images, labels), batch_size=16)


class TestLayerActivationStats:
    def test_streaming_max_min_mean(self):
        stats = LayerActivationStats("L")
        rng = np.random.default_rng(0)
        all_values = []
        for _ in range(5):
            chunk = rng.standard_normal(100).astype(np.float32)
            all_values.append(chunk)
            stats.update(chunk, rng)
        pooled = np.concatenate(all_values)
        assert stats.count == 500
        assert stats.act_max == pytest.approx(float(pooled.max()))
        assert stats.act_min == pytest.approx(float(pooled.min()))
        assert stats.mean == pytest.approx(float(pooled.mean()), rel=1e-5)
        assert stats.std == pytest.approx(float(pooled.std()), rel=1e-3)

    def test_percentiles_from_subsample(self):
        stats = LayerActivationStats("L")
        rng = np.random.default_rng(1)
        values = rng.random(10_000).astype(np.float32)
        stats.update(values, rng)
        assert stats.percentile(50) == pytest.approx(0.5, abs=0.05)

    def test_sample_budget_respected(self):
        stats = LayerActivationStats("L", _sample_budget=100)
        rng = np.random.default_rng(2)
        stats.update(rng.random(1000), rng)
        stats.update(rng.random(1000), rng)
        retained = sum(chunk.size for chunk in stats._samples)
        assert retained == 100

    def test_empty_update_noop(self):
        stats = LayerActivationStats("L")
        stats.update(np.empty(0), np.random.default_rng(0))
        assert stats.count == 0

    def test_percentile_without_samples_raises(self):
        with pytest.raises(ValueError):
            LayerActivationStats("L").percentile(50)

    def test_histogram(self):
        stats = LayerActivationStats("L")
        rng = np.random.default_rng(3)
        stats.update(rng.random(1000), rng)
        counts, edges = stats.histogram(bins=10)
        assert counts.sum() == 1000
        assert edges.size == 11


class TestProfiler:
    def test_act_max_matches_direct_observation(self, trained_lenet):
        loader = _loader()
        profile = profile_activations(trained_lenet, loader, seed=0)
        # Directly observe CONV-1's post-ReLU output on the same data.
        relu1 = trained_lenet[1]
        seen = []
        handle = relu1.register_forward_hook(lambda m, i, o: seen.append(o.max()))
        for images, _ in loader:
            trained_lenet(images)
        handle.remove()
        assert profile.act_max["CONV-1"] == pytest.approx(float(max(seen)), rel=1e-6)

    def test_profiles_every_activation_site(self, trained_lenet):
        profile = profile_activations(trained_lenet, _loader(), seed=0)
        assert set(profile.act_max) == {"CONV-1", "CONV-2", "FC-1", "FC-2"}
        assert all(v > 0 for v in profile.act_max.values())

    def test_num_images_counted(self, trained_lenet):
        profile = profile_activations(trained_lenet, _loader(48), seed=0)
        assert profile.num_images == 48

    def test_hooks_removed_after_one_shot(self, trained_lenet):
        before = dict(trained_lenet[1]._forward_hooks)
        profile_activations(trained_lenet, _loader(), seed=0)
        after = dict(trained_lenet[1]._forward_hooks)
        assert before == after

    def test_context_manager_removes_hooks(self, trained_lenet):
        with ActivationProfiler(trained_lenet, seed=0) as profiler:
            profiler.run(_loader())
        assert not trained_lenet[1]._forward_hooks

    def test_model_mode_restored(self, trained_lenet):
        trained_lenet.train()
        profile_activations(trained_lenet, _loader(), seed=0)
        assert trained_lenet.training
        trained_lenet.eval()

    def test_thresholds_at_percentile(self, trained_lenet):
        profile = profile_activations(trained_lenet, _loader(), seed=0)
        p99 = profile.thresholds_at_percentile(99)
        for layer, act_max in profile.act_max.items():
            assert p99[layer] <= act_max

    def test_model_without_activations_rejected(self):
        with pytest.raises(ValueError):
            ActivationProfiler(nn.Sequential(nn.Linear(4, 2, seed=0)))

    def test_deterministic(self, trained_lenet):
        a = profile_activations(trained_lenet, _loader(), seed=0).act_max
        b = profile_activations(trained_lenet, _loader(), seed=0).act_max
        assert a == b
