"""``repro report``: golden-byte determinism and content checks.

The report is a pure function of the run directory's bytes, so two
kinds of identity are asserted:

* **Golden bytes.**  A synthetic run directory built from fixed
  constants (exact + adaptive + quarantined scenarios, plus BENCH
  histories) renders byte-identical to the committed
  ``tests/golden/report_golden.html``.  Regenerate after an intentional
  template change with ``REPRO_REGEN_GOLDEN=1 python -m pytest
  tests/test_results_report.py -k golden``.
* **Live determinism.**  Rendering the same run twice, and rendering
  runs executed with 1 vs 2 workers, produces byte-identical HTML
  (worker count never leaks into results, so it must not leak into
  reports).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.results import (
    REPORT_FILENAME,
    REPORT_SECTIONS,
    load_run,
    render_report,
    write_report,
)
from repro.scenarios import (
    CampaignSpec,
    ScenarioContext,
    ScenarioSuite,
    assemble_scenario_result,
    run_scenarios,
    write_results,
)

GOLDEN = Path(__file__).parent / "golden" / "report_golden.html"


# ------------------------------------------------------------------ #
# the synthetic golden run (fixed constants, no training)
# ------------------------------------------------------------------ #


def _golden_results():
    exact = CampaignSpec(
        name="exact/unprotected", model="lenet5",
        rates=(1e-6, 1e-5, 1e-4), trials=3,
        eval_images=32, batch_size=16, seed=11,
    )
    exact_grid = np.array(
        [
            [0.9375, 0.90625, 0.9375],
            [0.875, np.nan, 0.84375],
            [0.5, 0.46875, 0.53125],
        ]
    )
    failed = [
        {
            "rate_index": 1, "trial": 1, "reason": "timeout",
            "attempts": 3, "error": "TimeoutError: cell overran 0.5s",
        }
    ]
    adaptive = CampaignSpec(
        name="adaptive/ftclipact", model="lenet5", rates=(1e-6, 1e-4),
        trials=3, eval_images=32, batch_size=16, seed=12,
        mode="adaptive", ci_halfwidth=0.1, variant="ftclipact",
        importance=4.0,
    )
    adaptive_grid = np.array(
        [
            [0.9375, 1.0, 0.9375, np.nan, np.nan, 1.25, np.nan, np.nan],
            [0.625, 3.0, 0.59375, 0.65625, 0.625, 0.8, 1.2, 1.1],
        ]
    )
    return [
        assemble_scenario_result(
            exact, exact.rates, exact_grid, 0.96875, failed=failed
        ),
        assemble_scenario_result(adaptive, adaptive.rates, adaptive_grid, 0.96875),
    ]


@pytest.fixture()
def golden_run(tmp_path):
    run_dir = tmp_path / "run"
    write_results(_golden_results(), run_dir, suite="golden-suite")
    bench_dir = tmp_path / "bench"
    bench_dir.mkdir()
    (bench_dir / "BENCH_campaign.json").write_text(
        json.dumps(
            {
                "benchmark": "campaign",
                "history": [
                    {"sha": "aaaa111122223333", "cpus": 8, "workers": 4,
                     "wall_seconds": 12.5, "dirty": False},
                    {"sha": "bbbb444455556666", "cpus": 8, "workers": 4,
                     "wall_seconds": 10.0, "dirty": False},
                ],
            },
            indent=1, sort_keys=True,
        )
    )
    (bench_dir / "BENCH_forward.json").write_text(
        json.dumps({"benchmark": "forward", "history": []})
    )
    return run_dir, bench_dir


class TestGoldenBytes:
    def test_report_matches_golden_fixture(self, golden_run):
        run_dir, bench_dir = golden_run
        html = render_report(run_dir, bench_dir=bench_dir)
        if os.environ.get("REPRO_REGEN_GOLDEN") == "1":
            GOLDEN.parent.mkdir(exist_ok=True)
            GOLDEN.write_text(html)
        assert GOLDEN.is_file(), (
            "golden fixture missing; regenerate with REPRO_REGEN_GOLDEN=1"
        )
        assert html == GOLDEN.read_text(), (
            "report bytes drifted from tests/golden/report_golden.html; "
            "if the change is intentional, regenerate with "
            "REPRO_REGEN_GOLDEN=1"
        )

    def test_render_is_repeatable(self, golden_run):
        run_dir, bench_dir = golden_run
        assert render_report(run_dir, bench_dir=bench_dir) == render_report(
            run_dir, bench_dir=bench_dir
        )

    def test_write_report_default_path(self, golden_run):
        run_dir, _ = golden_run
        target = write_report(run_dir)
        assert target == run_dir / REPORT_FILENAME
        assert target.read_text() == render_report(run_dir)


class TestReportContent:
    def test_every_section_is_rendered(self, golden_run):
        run_dir, bench_dir = golden_run
        html = render_report(run_dir, bench_dir=bench_dir)
        for section in REPORT_SECTIONS:
            assert f'<section id="{section}">' in html

    def test_quarantine_table_comes_from_store(self, golden_run):
        run_dir, _ = golden_run
        html = render_report(run_dir)
        assert "timeout" in html
        assert "TimeoutError: cell overran 0.5s" in html

    def test_quarantine_falls_back_to_json_without_store(self, tmp_path):
        run_dir = tmp_path / "run"
        write_results(
            _golden_results(), run_dir, suite="golden-suite", store=False
        )
        run = load_run(run_dir)
        assert run.store is None
        html = render_report(run_dir)
        assert "No per-cell store" in html
        assert "timeout" in html  # still sourced from failed_cells JSON

    def test_bench_section_reports_missing_dir_contents(self, golden_run):
        run_dir, _ = golden_run
        html = render_report(run_dir, bench_dir=run_dir)  # no BENCH_*.json
        assert "No BENCH_*.json histories" in html

    def test_markup_is_escaped(self, tmp_path):
        spec = CampaignSpec(
            name="xss<script>&co", model="lenet5", rates=(1e-6,),
            trials=1, eval_images=16, batch_size=16, seed=1,
        )
        result = assemble_scenario_result(
            spec, spec.rates, np.array([[0.5]]), 0.9
        )
        run_dir = tmp_path / "run"
        write_results([result], run_dir)
        html = render_report(run_dir)
        assert "<script>" not in html
        assert "xss&lt;script&gt;&amp;co" in html

    def test_many_scenarios_fold_combined_figure(self, tmp_path):
        results = []
        for index in range(9):
            spec = CampaignSpec(
                name=f"s{index}", model="lenet5", rates=(1e-6, 1e-5),
                trials=1, eval_images=16, batch_size=16, seed=index + 1,
            )
            results.append(
                assemble_scenario_result(
                    spec, spec.rates, np.array([[0.5], [0.25]]), 0.9
                )
            )
        run_dir = tmp_path / "run"
        write_results(results, run_dir)
        html = render_report(run_dir)
        assert "exceed the 8-series limit" in html

    def test_missing_summary_is_a_clear_error(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="summary.json"):
            render_report(tmp_path)


# ------------------------------------------------------------------ #
# live determinism: worker count never reaches the report bytes
# ------------------------------------------------------------------ #


@pytest.fixture(scope="module")
def live_ctx():
    return ScenarioContext(
        bundle_overrides={
            "n_train": 96, "n_val": 48, "n_test": 64, "epochs": 1
        }
    )


@pytest.fixture(scope="module")
def live_suite():
    return ScenarioSuite(
        name="report-mini",
        specs=(
            CampaignSpec(
                name="exact", model="lenet5", rates=(1e-6, 1e-4),
                trials=2, eval_images=16, batch_size=16, seed=21,
            ),
            CampaignSpec(
                name="adaptive", model="lenet5", rates=(1e-6, 1e-4),
                trials=3, eval_images=16, batch_size=16, seed=22,
                mode="adaptive", ci_halfwidth=0.2,
            ),
        ),
    )


class TestLiveDeterminism:
    def test_worker_count_does_not_change_report_bytes(
        self, live_suite, live_ctx, tmp_path
    ):
        pages = []
        for workers in (1, 2):
            out = tmp_path / f"w{workers}"
            run_scenarios(
                live_suite, workers=workers, out_dir=out, context=live_ctx
            )
            pages.append(render_report(out))
        assert pages[0] == pages[1]
