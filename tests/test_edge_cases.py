"""Edge-case tests across modules (paths not covered by the main suites)."""

import numpy as np
import pytest

from repro import nn
from repro.core.swap import find_activation_sites, swap_activations
from repro.data import ArrayDataset, DataLoader
from repro.hw.faultmodels import FaultSet, RandomBitFlip
from repro.hw.injector import FaultInjector
from repro.hw.memory import WeightMemory
from repro.models import LeNet5


class TestNestedContainers:
    def _nested_model(self):
        """Conv stack and classifier head as nested Sequentials."""
        features = nn.Sequential(
            nn.Conv2d(3, 4, 3, padding=1, seed=0),
            nn.ReLU(),
            nn.MaxPool2d(2),
        )
        head = nn.Sequential(
            nn.Flatten(),
            nn.Linear(4 * 4 * 4, 8, seed=1),
            nn.ReLU(),
            nn.Linear(8, 2, seed=2),
        )
        return nn.Sequential(features, head)

    def test_sites_found_through_nesting(self):
        sites = find_activation_sites(self._nested_model())
        assert [s.layer_name for s in sites] == ["CONV-1", "FC-1"]

    def test_swap_through_nesting(self):
        model = self._nested_model()
        result = swap_activations(model, 3.0)
        assert result.replaced == 2
        x = np.random.default_rng(0).random((2, 3, 8, 8)).astype(np.float32)
        assert model(x).shape == (2, 2)

    def test_weight_memory_through_nesting(self):
        model = self._nested_model()
        memory = WeightMemory.from_model(model)
        assert memory.layer_names() == ["CONV-1", "FC-1", "FC-2"]

    def test_state_dict_through_nesting(self):
        model = self._nested_model()
        other = self._nested_model()
        other.load_state_dict(model.state_dict())
        x = np.ones((1, 3, 8, 8), dtype=np.float32)
        model.eval(), other.eval()
        np.testing.assert_array_equal(model(x), other(x))


class TestInjectorAcrossRegions:
    def test_faults_spanning_region_boundary(self):
        """One fault set hitting several parameters restores exactly."""
        params = [
            ("a", nn.Parameter(np.ones(4, dtype=np.float32))),
            ("b", nn.Parameter(np.full(4, 2.0, dtype=np.float32))),
            ("c", nn.Parameter(np.full(4, 3.0, dtype=np.float32))),
        ]
        memory = WeightMemory.from_parameters(params)
        injector = FaultInjector(memory)
        originals = [p.data.copy() for _, p in params]
        # Last bit of region a, first of b, middle of c.
        bits = np.asarray([4 * 32 - 1, 4 * 32, 2 * 4 * 32 + 50])
        with injector.apply(FaultSet.flips(bits)) as record:
            assert len(record.affected_layers()) == 3
        for (_, param), original in zip(params, originals):
            np.testing.assert_array_equal(param.data, original)

    def test_scoped_memory_never_touches_other_layers(self):
        model = LeNet5(seed=0)
        conv1_memory = WeightMemory.from_model(model, layers=["CONV-1"])
        injector = FaultInjector(conv1_memory)
        fc1 = dict(model.named_modules())["7"]  # Linear FC-1
        before = fc1.weight.data.copy()
        with injector.session(RandomBitFlip(0.05), rng=0):
            np.testing.assert_array_equal(fc1.weight.data, before)


class TestWeightMemoryEdges:
    def test_empty_layer_list_rejected(self):
        with pytest.raises(ValueError):
            WeightMemory.from_model(LeNet5(seed=0), layers=[])

    def test_single_parameter_memory(self):
        param = nn.Parameter(np.zeros(1, dtype=np.float32))
        memory = WeightMemory.from_parameters([("only", param)])
        assert memory.total_bits == 32
        located = memory.locate(np.asarray([31]))
        assert located[0][2][0] == 31


class TestDataLoaderEdges:
    def test_drop_last_with_shuffle_covers_subset(self):
        images = np.arange(10, dtype=np.float32).reshape(10, 1, 1, 1)
        labels = np.arange(10, dtype=np.int64)
        loader = DataLoader(
            ArrayDataset(images, labels), batch_size=4, shuffle=True,
            drop_last=True, seed=0,
        )
        batches = list(loader)
        assert len(batches) == 2
        seen = np.concatenate([b[1] for b in batches])
        assert np.unique(seen).size == 8  # distinct samples, two dropped

    def test_batch_size_larger_than_dataset(self):
        images = np.zeros((3, 1, 1, 1), dtype=np.float32)
        labels = np.zeros(3, dtype=np.int64)
        loader = DataLoader(ArrayDataset(images, labels), batch_size=100)
        (batch_images, batch_labels), = list(loader)
        assert batch_images.shape[0] == 3


class TestModuleEdges:
    def test_module_without_parameters_state_dict_empty(self):
        assert nn.Flatten().state_dict() == {}

    def test_load_empty_state_dict(self):
        flat = nn.Flatten()
        flat.load_state_dict({})  # no error

    def test_parameter_overwrite_by_module(self):
        """Reassigning an attribute from Parameter to Module re-registers."""

        class Holder(nn.Module):
            def __init__(self):
                super().__init__()
                self.slot = nn.Parameter(np.zeros(2))

        holder = Holder()
        holder.slot = nn.ReLU()
        assert dict(holder.named_parameters()) == {}
        assert isinstance(dict(holder.named_children())["slot"], nn.ReLU)


class TestCampaignBatchInvariance:
    def test_results_independent_of_batch_size(self, trained_mlp, mlp_eval_arrays):
        from repro.core.campaign import CampaignConfig, run_campaign

        images, labels = mlp_eval_arrays
        memory = WeightMemory.from_model(trained_mlp)
        base = dict(fault_rates=(1e-3,), trials=3, seed=5)
        a = run_campaign(
            trained_mlp, memory, images, labels, CampaignConfig(batch_size=7, **base)
        )
        b = run_campaign(
            trained_mlp, memory, images, labels, CampaignConfig(batch_size=96, **base)
        )
        np.testing.assert_allclose(a.accuracies, b.accuracies, atol=1e-12)
