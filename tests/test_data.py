"""Tests for datasets, loaders and transforms."""

import numpy as np
import pytest

from repro.data import (
    ArrayDataset,
    Compose,
    DataLoader,
    Normalize,
    RandomCrop,
    RandomHorizontalFlip,
    Subset,
    SyntheticCIFAR10,
    TransformedDataset,
    compute_channel_stats,
)


def _dataset(n=10):
    rng = np.random.default_rng(0)
    return ArrayDataset(
        rng.random((n, 3, 4, 4)).astype(np.float32),
        rng.integers(0, 3, size=n).astype(np.int64),
    )


class TestArrayDataset:
    def test_len_and_getitem(self):
        dataset = _dataset(7)
        assert len(dataset) == 7
        image, label = dataset[3]
        assert image.shape == (3, 4, 4)
        assert isinstance(label, int)

    def test_mismatched_counts_rejected(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((3, 1, 2, 2)), np.zeros(4, dtype=np.int64))

    def test_2d_labels_rejected(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((3, 1, 2, 2)), np.zeros((3, 1), dtype=np.int64))

    def test_arrays_roundtrip(self):
        dataset = _dataset(5)
        images, labels = dataset.arrays()
        assert images.shape[0] == 5
        assert labels.dtype == np.int64


class TestSubset:
    def test_indexing(self):
        dataset = _dataset(10)
        subset = Subset(dataset, [2, 5, 7])
        assert len(subset) == 3
        np.testing.assert_array_equal(subset[1][0], dataset[5][0])

    def test_out_of_range_rejected(self):
        with pytest.raises(IndexError):
            Subset(_dataset(3), [5])


class TestTransformedDataset:
    def test_transform_applied_lazily(self):
        dataset = _dataset(4)
        doubled = TransformedDataset(dataset, lambda image: image * 2)
        np.testing.assert_allclose(doubled[0][0], dataset[0][0] * 2, rtol=1e-6)
        assert doubled[0][1] == dataset[0][1]


class TestDataLoader:
    def test_batch_shapes(self):
        loader = DataLoader(_dataset(10), batch_size=4)
        batches = list(loader)
        assert [b[0].shape[0] for b in batches] == [4, 4, 2]
        assert len(loader) == 3

    def test_drop_last(self):
        loader = DataLoader(_dataset(10), batch_size=4, drop_last=True)
        assert [b[0].shape[0] for b in loader] == [4, 4]
        assert len(loader) == 2

    def test_shuffle_is_seeded_and_epoch_indexed(self):
        a = DataLoader(_dataset(20), batch_size=20, shuffle=True, seed=3)
        b = DataLoader(_dataset(20), batch_size=20, shuffle=True, seed=3)
        first_a = next(iter(a))[1]
        first_b = next(iter(b))[1]
        np.testing.assert_array_equal(first_a, first_b)
        second_a = next(iter(a))[1]
        # Epoch 2 ordering differs from epoch 1 (with overwhelming probability).
        assert not np.array_equal(first_a, second_a)

    def test_no_shuffle_preserves_order(self):
        dataset = _dataset(6)
        loader = DataLoader(dataset, batch_size=6)
        _, labels = next(iter(loader))
        np.testing.assert_array_equal(labels, dataset.labels)

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            DataLoader(ArrayDataset(np.zeros((0, 1, 2, 2)), np.zeros(0, dtype=np.int64)), 4)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(_dataset(4), batch_size=0)


class TestSyntheticCIFAR10:
    def test_shapes_and_range(self):
        generator = SyntheticCIFAR10(seed=0)
        images, labels = generator.generate(20, "train")
        assert images.shape == (20, 3, 32, 32)
        assert images.dtype == np.float32
        assert images.min() >= 0.0 and images.max() <= 1.0
        assert labels.min() >= 0 and labels.max() < 10

    def test_balanced_labels(self):
        generator = SyntheticCIFAR10(seed=0)
        _, labels = generator.generate(100, "train")
        counts = np.bincount(labels, minlength=10)
        assert (counts == 10).all()

    def test_deterministic(self):
        a = SyntheticCIFAR10(seed=4).generate(10, "train")
        b = SyntheticCIFAR10(seed=4).generate(10, "train")
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    def test_splits_are_disjoint_streams(self):
        generator = SyntheticCIFAR10(seed=4)
        train_images, _ = generator.generate(10, "train")
        test_images, _ = generator.generate(10, "test")
        assert not np.allclose(train_images, test_images)

    def test_seed_changes_data(self):
        a = SyntheticCIFAR10(seed=1).generate(5, "train")[0]
        b = SyntheticCIFAR10(seed=2).generate(5, "train")[0]
        assert not np.allclose(a, b)

    def test_classes_are_visually_distinct(self):
        """Mean images of different classes should differ substantially."""
        generator = SyntheticCIFAR10(seed=0)
        means = []
        for label in range(10):
            rng = np.random.default_rng(123)
            samples = np.stack(
                [generator.generate_sample(label, rng) for _ in range(8)]
            )
            means.append(samples.mean(axis=0))
        means = np.stack(means)
        for i in range(10):
            for j in range(i + 1, 10):
                assert np.abs(means[i] - means[j]).mean() > 0.01

    def test_custom_image_size(self):
        generator = SyntheticCIFAR10(image_size=16, seed=0)
        images, _ = generator.generate(4, "train")
        assert images.shape == (4, 3, 16, 16)

    def test_invalid_label_rejected(self):
        generator = SyntheticCIFAR10(seed=0)
        with pytest.raises(ValueError):
            generator.generate_sample(10, np.random.default_rng(0))

    def test_negative_noise_rejected(self):
        with pytest.raises(ValueError):
            SyntheticCIFAR10(noise_std=-0.1)

    def test_dataset_helper(self):
        dataset = SyntheticCIFAR10(seed=0).dataset(12, "val")
        assert len(dataset) == 12


class TestTransforms:
    def test_normalize(self):
        transform = Normalize(mean=[0.5, 0.5, 0.5], std=[0.5, 0.5, 0.5])
        image = np.full((3, 2, 2), 1.0, dtype=np.float32)
        np.testing.assert_allclose(transform(image), np.ones((3, 2, 2)), rtol=1e-6)

    def test_normalize_rejects_bad_std(self):
        with pytest.raises(ValueError):
            Normalize(mean=[0.0], std=[0.0])

    def test_normalize_rejects_channel_mismatch(self):
        transform = Normalize(mean=[0.5], std=[0.5])
        with pytest.raises(ValueError):
            transform(np.zeros((3, 2, 2), dtype=np.float32))

    def test_flip_probability_one(self):
        transform = RandomHorizontalFlip(p=1.0, seed=0)
        image = np.arange(12, dtype=np.float32).reshape(3, 2, 2)
        np.testing.assert_array_equal(transform(image), image[:, :, ::-1])

    def test_flip_probability_zero(self):
        transform = RandomHorizontalFlip(p=0.0, seed=0)
        image = np.arange(12, dtype=np.float32).reshape(3, 2, 2)
        np.testing.assert_array_equal(transform(image), image)

    def test_crop_preserves_shape(self):
        transform = RandomCrop(padding=2, seed=0)
        image = np.random.default_rng(0).random((3, 8, 8)).astype(np.float32)
        assert transform(image).shape == (3, 8, 8)

    def test_crop_zero_padding_identity(self):
        transform = RandomCrop(padding=0)
        image = np.ones((3, 4, 4), dtype=np.float32)
        np.testing.assert_array_equal(transform(image), image)

    def test_compose_order(self):
        transform = Compose([lambda x: x + 1, lambda x: x * 2])
        np.testing.assert_array_equal(
            transform(np.zeros(3, dtype=np.float32)), np.full(3, 2.0)
        )

    def test_compute_channel_stats(self):
        images = np.zeros((4, 2, 3, 3), dtype=np.float32)
        images[:, 1] = 2.0
        mean, std = compute_channel_stats(images)
        np.testing.assert_allclose(mean, [0.0, 2.0])
        np.testing.assert_allclose(std, [1.0, 1.0])  # zero std replaced by 1
