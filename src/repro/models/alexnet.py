"""CIFAR-10 AlexNet: 5 convolutional + 3 fully-connected layers.

Matches the paper's description ("The AlexNet contains 5 CONV layer and
3 FC layer", Section V-A) adapted to 32x32 inputs.  A ``width_mult``
scales every channel/feature count so experiments fit a single CPU core;
the layer *count and ordering* — which is what the per-layer resilience
analysis depends on — is unchanged at any width.
"""

from __future__ import annotations

from repro import nn
from repro.utils.rng import SeedTree
from repro.utils.validation import check_positive

__all__ = ["CifarAlexNet", "build_alexnet"]

# Full-size CIFAR-AlexNet channel plan (width_mult = 1.0).
_CONV_CHANNELS = (64, 192, 384, 256, 256)
_FC_FEATURES = (1024, 512)


def _scaled(value: int, width_mult: float, minimum: int = 4) -> int:
    """Scale a channel count, keeping at least ``minimum`` channels."""
    return max(minimum, int(round(value * width_mult)))


class CifarAlexNet(nn.Sequential):
    """AlexNet topology for 3x32x32 inputs.

    Structure (pooling after CONV-1, CONV-2 and CONV-5, as in AlexNet)::

        CONV-1 -> ReLU -> MaxPool
        CONV-2 -> ReLU -> MaxPool
        CONV-3 -> ReLU
        CONV-4 -> ReLU
        CONV-5 -> ReLU -> MaxPool
        Flatten -> FC-1 -> ReLU -> Dropout
                -> FC-2 -> ReLU -> Dropout
                -> FC-3 (logits)
    """

    def __init__(
        self,
        num_classes: int = 10,
        width_mult: float = 1.0,
        dropout: float = 0.5,
        in_channels: int = 3,
        image_size: int = 32,
        seed: int = 0,
    ):
        check_positive("num_classes", num_classes)
        check_positive("width_mult", width_mult)
        check_positive("image_size", image_size)
        tree = SeedTree(seed)
        c1, c2, c3, c4, c5 = (_scaled(c, width_mult) for c in _CONV_CHANNELS)
        f1, f2 = (_scaled(f, width_mult, minimum=16) for f in _FC_FEATURES)
        # Three 2x2 max-pools halve the spatial size three times.
        spatial = image_size // 8
        if spatial < 1:
            raise ValueError(f"image_size={image_size} too small for AlexNet")

        super().__init__(
            nn.Conv2d(in_channels, c1, 3, padding=1, seed=tree.generator("conv1")),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Conv2d(c1, c2, 3, padding=1, seed=tree.generator("conv2")),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Conv2d(c2, c3, 3, padding=1, seed=tree.generator("conv3")),
            nn.ReLU(),
            nn.Conv2d(c3, c4, 3, padding=1, seed=tree.generator("conv4")),
            nn.ReLU(),
            nn.Conv2d(c4, c5, 3, padding=1, seed=tree.generator("conv5")),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Flatten(),
            nn.Linear(c5 * spatial * spatial, f1, seed=tree.generator("fc1")),
            nn.ReLU(),
            nn.Dropout(dropout, seed=tree.generator("drop1")),
            nn.Linear(f1, f2, seed=tree.generator("fc2")),
            nn.ReLU(),
            nn.Dropout(dropout, seed=tree.generator("drop2")),
            nn.Linear(f2, num_classes, seed=tree.generator("fc3")),
        )
        self.num_classes = num_classes
        self.width_mult = width_mult


def build_alexnet(num_classes: int = 10, width_mult: float = 1.0, seed: int = 0) -> CifarAlexNet:
    """Convenience constructor used by the registry."""
    return CifarAlexNet(num_classes=num_classes, width_mult=width_mult, seed=seed)
