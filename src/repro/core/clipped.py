"""The paper's clipped activation functions (Section IV-A).

The central mitigation: replace the unbounded ReLU with

    f(x) = x   if 0 <= x <= T
           0   otherwise

so high-intensity (potentially faulty) activations are squashed to zero
instead of propagating.  :class:`ClampedReLU` (saturate at T instead of
zeroing, i.e. a tunable ReLU6) is provided as an ablation — the paper
argues for mapping to *zero* because a faulty activation carries no
information, and our ablation benchmark quantifies the difference.
"""

from __future__ import annotations

import numpy as np

from repro.nn.activations import Activation
from repro.nn.module import Module

__all__ = ["ClippedReLU", "ClampedReLU", "ClippedLeakyReLU"]


def _check_threshold(threshold: float) -> float:
    threshold = float(threshold)
    if not np.isfinite(threshold) or threshold <= 0:
        raise ValueError(f"threshold must be positive and finite, got {threshold}")
    return threshold


class ClippedReLU(Activation):
    """Paper Eq. (Section IV-A): pass [0, T], map everything else to zero."""

    def __init__(self, threshold: float):
        super().__init__()
        self._threshold = _check_threshold(threshold)
        self._mask: "np.ndarray | None" = None

    @property
    def threshold(self) -> float:
        """Current clipping threshold T."""
        return self._threshold

    @threshold.setter
    def threshold(self, value: float) -> None:
        self._threshold = _check_threshold(value)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        inside = (x >= 0.0) & (x <= self._threshold)
        if self.training:
            self._mask = inside
        return np.where(inside, x, np.float32(0.0))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward in training mode")
        return np.asarray(grad_output, dtype=np.float32) * self._mask

    def extra_repr(self) -> str:
        return f"threshold={self._threshold:.6g}"


class ClampedReLU(Activation):
    """Ablation variant: saturate at T (``min(max(0, x), T)``) instead of
    zeroing.  Equivalent to ReLU6 with a tunable cap."""

    def __init__(self, threshold: float):
        super().__init__()
        self._threshold = _check_threshold(threshold)
        self._mask: "np.ndarray | None" = None

    @property
    def threshold(self) -> float:
        """Current saturation threshold T."""
        return self._threshold

    @threshold.setter
    def threshold(self, value: float) -> None:
        self._threshold = _check_threshold(value)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        if self.training:
            self._mask = (x > 0.0) & (x < self._threshold)
        return np.clip(x, 0.0, self._threshold)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward in training mode")
        return np.asarray(grad_output, dtype=np.float32) * self._mask

    def extra_repr(self) -> str:
        return f"threshold={self._threshold:.6g}"


class ClippedLeakyReLU(Activation):
    """Clipped Leaky-ReLU (the paper notes other activations clip the same
    way): negative slope below zero, zeroed above T."""

    def __init__(self, threshold: float, negative_slope: float = 0.01):
        super().__init__()
        self._threshold = _check_threshold(threshold)
        self.negative_slope = float(negative_slope)
        self._cache: "tuple[np.ndarray, np.ndarray] | None" = None

    @property
    def threshold(self) -> float:
        """Current clipping threshold T."""
        return self._threshold

    @threshold.setter
    def threshold(self, value: float) -> None:
        self._threshold = _check_threshold(value)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        positive_inside = (x >= 0.0) & (x <= self._threshold)
        negative = x < 0.0
        out = np.where(
            positive_inside,
            x,
            np.where(negative, self.negative_slope * x, np.float32(0.0)),
        ).astype(np.float32)
        if self.training:
            self._cache = (positive_inside, negative)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward in training mode")
        positive_inside, negative = self._cache
        grad = np.asarray(grad_output, dtype=np.float32)
        return np.where(
            positive_inside, grad, np.where(negative, self.negative_slope * grad, 0.0)
        ).astype(np.float32)

    def extra_repr(self) -> str:
        return (
            f"threshold={self._threshold:.6g}, negative_slope={self.negative_slope}"
        )
