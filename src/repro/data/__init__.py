"""Data substrate: datasets, loaders, transforms, and the synthetic
CIFAR-10 replacement used in place of the (offline-unavailable) original."""

from repro.data.dataset import ArrayDataset, Dataset, Subset, TransformedDataset
from repro.data.loader import DataLoader
from repro.data.synthetic import (
    CIFAR10_CLASS_NAMES,
    ClassPrototype,
    SyntheticCIFAR10,
)
from repro.data.transforms import (
    Compose,
    Normalize,
    RandomCrop,
    RandomHorizontalFlip,
    compute_channel_stats,
)

__all__ = [
    "ArrayDataset",
    "CIFAR10_CLASS_NAMES",
    "ClassPrototype",
    "Compose",
    "DataLoader",
    "Dataset",
    "Normalize",
    "RandomCrop",
    "RandomHorizontalFlip",
    "Subset",
    "SyntheticCIFAR10",
    "TransformedDataset",
    "compute_channel_stats",
]
