"""Suffix re-execution throughput: clean forward vs suffix per model.

Not a paper figure — an infrastructure benchmark for the suffix engine
(:mod:`repro.core.suffix`).  For every zoo architecture it measures

* one full forward pass over the evaluation set,
* suffix re-execution from a *deep* cut (the deepest CONV/FC layer) and
  from a *shallow* cut (the first faultable boundary after the input),
* a layerwise-campaign workload scoped to the deepest layer — the
  engine's target case — run once with the engine off and once with it
  on (the on-timing includes the engine's one-time clean pass).

Results land in ``benchmarks/results/BENCH_forward.json``.  The headline
acceptance bar: the scoped campaign on the deepest layer of the deepest
zoo model (VGG-16, 13 CONV + 1 FC) must be at least 2x faster with the
engine, with bit-identical accuracies (asserted here; the registry-wide
property tests in tests/test_core_suffix.py guard bit-identity broadly).
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.core.campaign import CampaignConfig
from repro.core.executor import WeightFaultCellTask
from repro.core.suffix import SuffixForwardEngine
from repro.data import SyntheticCIFAR10
from repro.hw.memory import WeightMemory
from repro.models.registry import MODEL_BUILDERS, layer_names

from .conftest import RESULTS_DIR

# Weight training is irrelevant to throughput: freshly-initialised
# networks at the zoo's default width keep the benchmark in CPU-seconds.
WIDTH_MULT = 0.25
EVAL_IMAGES = 128
BATCH_SIZE = 64
CAMPAIGN_CELLS_RATES = (1e-4, 3e-4)
CAMPAIGN_TRIALS = 3
SEED = 2020
DEEPEST_ZOO_MODEL = "vgg16"  # 13 CONV + 1 FC: the deepest architecture


def _timed_batches(fn, images):
    start = time.perf_counter()
    with np.errstate(over="ignore", invalid="ignore"):
        for offset in range(0, images.shape[0], BATCH_SIZE):
            fn(images[offset : offset + BATCH_SIZE], offset)
    return time.perf_counter() - start


def _campaign_seconds(model, memory, images, labels, suffix):
    config = CampaignConfig(
        fault_rates=CAMPAIGN_CELLS_RATES,
        trials=CAMPAIGN_TRIALS,
        seed=SEED,
        batch_size=BATCH_SIZE,
    )
    task = WeightFaultCellTask(
        model, memory, images, labels, config=config, suffix=suffix
    )
    # The timer covers runner construction: the engine's one-time clean
    # pass is part of the cost being measured, not overhead to hide.
    start = time.perf_counter()
    runner = task.make_runner()
    try:
        values = [
            runner.run_cell(rate_index, trial)
            for rate_index in range(len(CAMPAIGN_CELLS_RATES))
            for trial in range(CAMPAIGN_TRIALS)
        ]
        return time.perf_counter() - start, np.asarray(values)
    finally:
        runner.close()


def test_bench_forward_suffix(record_result):
    images, labels = SyntheticCIFAR10(seed=3).generate(EVAL_IMAGES, "test")
    payload = {
        "benchmark": "forward_suffix",
        "eval_images": EVAL_IMAGES,
        "batch_size": BATCH_SIZE,
        "width_mult": WIDTH_MULT,
        "campaign_cells": len(CAMPAIGN_CELLS_RATES) * CAMPAIGN_TRIALS,
        "models": {},
    }
    lines = [
        "forward vs suffix re-execution "
        f"({EVAL_IMAGES} images, width_mult {WIDTH_MULT}):"
    ]
    for name in sorted(MODEL_BUILDERS):
        model = MODEL_BUILDERS[name](num_classes=10, width_mult=WIDTH_MULT, seed=0)
        model.eval()
        layers = layer_names(model)
        deepest = layers[-1]
        memory = WeightMemory.from_model(model)
        engine = SuffixForwardEngine.build(
            model, images, BATCH_SIZE, scope_layers=memory.layer_names()
        )
        shallow = next(
            (layer for layer in layers if engine.start_index_for([layer])), None
        )

        full_seconds = _timed_batches(lambda batch, _: model(batch), images)
        deep_seconds = _timed_batches(engine.forward_fn([deepest]), images)
        shallow_seconds = (
            _timed_batches(engine.forward_fn([shallow]), images)
            if shallow is not None
            else None
        )
        engine.close()

        scoped = WeightMemory.from_model(model, layers=[deepest])
        campaign_full, full_values = _campaign_seconds(
            model, scoped, images, labels, suffix=False
        )
        campaign_suffix, suffix_values = _campaign_seconds(
            model, scoped, images, labels, suffix=True
        )
        # Parallelism/suffix never change the science.
        np.testing.assert_array_equal(suffix_values, full_values)
        speedup = campaign_full / campaign_suffix

        payload["models"][name] = {
            "layers": len(layers),
            "deep_cut_layer": deepest,
            "shallow_cut_layer": shallow,
            "full_forward_seconds": round(full_seconds, 4),
            "suffix_deep_seconds": round(deep_seconds, 4),
            "suffix_shallow_seconds": (
                round(shallow_seconds, 4) if shallow_seconds is not None else None
            ),
            "campaign_full_seconds": round(campaign_full, 3),
            "campaign_suffix_seconds": round(campaign_suffix, 3),
            "campaign_speedup": round(speedup, 2),
            "bit_identical": True,
        }
        lines.append(
            f"  {name:8s} forward {full_seconds:7.4f}s | "
            f"suffix@{deepest} {deep_seconds:7.4f}s | "
            f"campaign {campaign_full:6.3f}s -> {campaign_suffix:6.3f}s "
            f"({speedup:.1f}x)"
        )

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_forward.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    record_result("BENCH_forward", "\n".join(lines))

    # Acceptance bar: >= 2x on the deepest layer of the deepest zoo model.
    deepest_model = payload["models"][DEEPEST_ZOO_MODEL]
    assert deepest_model["campaign_speedup"] >= 2.0, deepest_model
