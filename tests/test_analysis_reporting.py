"""Tests for text reporting helpers."""

import numpy as np
import pytest

from repro.analysis.reporting import (
    format_box_table,
    format_comparison_table,
    format_curve_table,
    format_histogram,
    format_rate,
    format_table,
)
from repro.core.metrics import ResilienceCurve


def _curve(label=""):
    rates = np.asarray([1e-7, 1e-6])
    accs = np.asarray([[0.9, 0.8], [0.5, 0.4]])
    return ResilienceCurve(rates, accs, clean_accuracy=0.95, label=label)


class TestFormatRate:
    def test_zero(self):
        assert format_rate(0.0) == "0"

    def test_scientific(self):
        assert format_rate(5e-7) == "5.0e-07"


class TestFormatTable:
    def test_alignment_and_content(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, 0.125]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "2.5000" in text and "30" in text

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_small_floats_scientific(self):
        text = format_table(["x"], [[1e-7]])
        assert "1.000e-07" in text


class TestCurveTables:
    def test_curve_table_has_clean_row(self):
        text = format_curve_table(_curve("demo"))
        assert text.splitlines()[0] == "curve: demo"
        assert "0.9500" in text  # clean accuracy row
        assert "1.0e-07" in text

    def test_comparison_table(self):
        text = format_comparison_table(
            [_curve(), _curve()], labels=["unprotected", "clipped"]
        )
        assert "unprotected" in text and "clipped" in text
        assert "AUC" in text

    def test_comparison_rejects_mismatched_grids(self):
        other = ResilienceCurve(
            np.asarray([1e-5, 1e-4]), np.asarray([[0.5], [0.4]]), 0.9
        )
        with pytest.raises(ValueError):
            format_comparison_table([_curve(), other])

    def test_comparison_rejects_empty(self):
        with pytest.raises(ValueError):
            format_comparison_table([])

    def test_box_table(self):
        text = format_box_table(_curve(), title="boxes")
        assert "median" in text
        assert "boxes" in text


class TestHistogram:
    def test_bars_scale(self):
        counts = np.asarray([1, 10])
        edges = np.asarray([0.0, 1.0, 2.0])
        text = format_histogram(counts, edges, width=10)
        lines = text.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 1

    def test_mismatched_edges_rejected(self):
        with pytest.raises(ValueError):
            format_histogram(np.asarray([1, 2]), np.asarray([0.0, 1.0]))

    def test_empty_counts_safe(self):
        text = format_histogram(np.asarray([0, 0]), np.asarray([0.0, 1.0, 2.0]))
        assert "#" not in text
