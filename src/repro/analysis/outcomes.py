"""Fault-outcome taxonomy: masked / benign / SDC / DUE classification.

Accuracy alone hides *how* a network fails.  The dependability literature
(e.g. Ares) classifies each faulty inference against the fault-free run:

* **masked** — the prediction is identical to the clean prediction;
* **benign** — the prediction changed but is still correct;
* **sdc** (silent data corruption) — the prediction changed from correct
  to wrong: the dangerous case for safety-critical deployment;
* **due** (detected uncorrectable error) — the output logits contain
  non-finite values, i.e. the corruption is at least *detectable* by a
  cheap runtime check.

A key appeal of clipped activations that plain accuracy understates: they
convert would-be SDCs into masked outcomes rather than merely shifting
the accuracy curve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import nn
from repro.core.campaign import CampaignConfig, FaultSampler, random_bitflip_sampler
from repro.core.metrics import predict_labels
from repro.hw.injector import FaultInjector
from repro.hw.memory import WeightMemory
from repro.utils.rng import SeedTree

__all__ = ["OutcomeCounts", "OutcomeBreakdown", "run_outcome_analysis"]


@dataclass(frozen=True)
class OutcomeCounts:
    """Counts of inference outcomes at one fault rate (summed over trials)."""

    masked: int
    benign: int
    sdc: int
    due: int

    @property
    def total(self) -> int:
        """Total classified inferences."""
        return self.masked + self.benign + self.sdc + self.due

    def rate(self, outcome: str) -> float:
        """Fraction of inferences with the given outcome."""
        value = getattr(self, outcome)
        return value / self.total if self.total else 0.0


@dataclass
class OutcomeBreakdown:
    """Per-fault-rate outcome statistics of one campaign."""

    fault_rates: np.ndarray
    counts: list[OutcomeCounts]
    clean_accuracy: float
    label: str = ""

    def sdc_rates(self) -> np.ndarray:
        """Silent-data-corruption fraction per fault rate."""
        return np.asarray([c.rate("sdc") for c in self.counts])

    def masked_rates(self) -> np.ndarray:
        """Masked fraction per fault rate."""
        return np.asarray([c.rate("masked") for c in self.counts])

    def due_rates(self) -> np.ndarray:
        """Detected (non-finite output) fraction per fault rate."""
        return np.asarray([c.rate("due") for c in self.counts])

    def summary_rows(self) -> list[list[object]]:
        """Table rows: rate, masked, benign, sdc, due fractions."""
        rows: list[list[object]] = []
        for rate, count in zip(self.fault_rates, self.counts):
            rows.append(
                [
                    float(rate),
                    count.rate("masked"),
                    count.rate("benign"),
                    count.rate("sdc"),
                    count.rate("due"),
                ]
            )
        return rows


def _classify_trial(
    model: nn.Module,
    images: np.ndarray,
    labels: np.ndarray,
    clean_predictions: np.ndarray,
    batch_size: int,
) -> tuple[int, int, int, int]:
    """Classify every image's outcome for the currently-injected faults."""
    masked = benign = sdc = due = 0
    was_training = model.training
    model.eval()
    try:
        with np.errstate(over="ignore", invalid="ignore"):
            for start in range(0, images.shape[0], batch_size):
                batch = images[start : start + batch_size]
                batch_labels = labels[start : start + batch_size]
                batch_clean = clean_predictions[start : start + batch_size]
                logits = model(batch)
                finite = np.isfinite(logits).all(axis=1)
                predictions = np.argmax(logits, axis=1)

                due += int((~finite).sum())
                same = finite & (predictions == batch_clean)
                masked += int(same.sum())
                changed = finite & ~same
                benign += int((changed & (predictions == batch_labels)).sum())
                sdc += int(
                    (changed & (batch_clean == batch_labels) & (predictions != batch_labels)).sum()
                )
                # Changed wrong->different-wrong is neither benign nor SDC;
                # count it as masked-equivalent harm-neutral "benign".
                benign += int(
                    (changed & (batch_clean != batch_labels) & (predictions != batch_labels)).sum()
                )
    finally:
        model.train(was_training)
    return masked, benign, sdc, due


def run_outcome_analysis(
    model: nn.Module,
    memory: WeightMemory,
    images: np.ndarray,
    labels: np.ndarray,
    config: "CampaignConfig | None" = None,
    sampler: "FaultSampler | None" = None,
    label: str = "",
) -> OutcomeBreakdown:
    """Sweep fault rates and classify every inference's outcome.

    Uses the same ``rate/<i>/trial/<j>`` seed derivation as
    :class:`~repro.core.campaign.FaultInjectionCampaign`, so outcome
    breakdowns pair exactly with accuracy curves from the same config.
    """
    config = config if config is not None else CampaignConfig()
    sampler = sampler if sampler is not None else random_bitflip_sampler()
    images = np.asarray(images, dtype=np.float32)
    labels = np.asarray(labels, dtype=np.int64)

    clean_predictions = predict_labels(model, images, config.batch_size)
    clean_accuracy = float((clean_predictions == labels).mean())

    injector = FaultInjector(memory)
    tree = SeedTree(config.seed)
    rates = np.asarray(config.fault_rates, dtype=np.float64)
    counts: list[OutcomeCounts] = []
    for rate_index, rate in enumerate(rates):
        masked = benign = sdc = due = 0
        for trial in range(config.trials):
            rng = tree.generator(f"rate/{rate_index}/trial/{trial}")
            fault_set = sampler(memory, float(rate), rng)
            with injector.apply(fault_set):
                m, b, s, d = _classify_trial(
                    model, images, labels, clean_predictions, config.batch_size
                )
            masked += m
            benign += b
            sdc += s
            due += d
        counts.append(OutcomeCounts(masked=masked, benign=benign, sdc=sdc, due=due))
    return OutcomeBreakdown(
        fault_rates=rates,
        counts=counts,
        clean_accuracy=clean_accuracy,
        label=label,
    )
