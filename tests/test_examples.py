"""Smoke tests for the example scripts.

Each example must parse, expose a --help, and reference only public API
symbols (checked by compiling and running help without side effects).
"""

import pathlib
import subprocess
import sys

import pytest

pytestmark = pytest.mark.slow  # spawns one subprocess per example script

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
class TestExamples:
    def test_compiles(self, script):
        source = script.read_text()
        compile(source, str(script), "exec")

    def test_help_runs(self, script):
        result = subprocess.run(
            [sys.executable, str(script), "--help"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0, result.stderr
        assert "usage" in result.stdout.lower()

    def test_has_module_docstring(self, script):
        source = script.read_text()
        assert source.lstrip().startswith(('"""', "#!"))


def test_expected_example_set():
    names = {script.name for script in EXAMPLES}
    assert {
        "quickstart.py",
        "per_layer_resilience.py",
        "harden_pretrained_dnn.py",
        "compare_mitigations.py",
        "bit_position_study.py",
    } <= names
    assert len(names) >= 5
