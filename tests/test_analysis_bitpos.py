"""Tests for the bit-position sensitivity study."""

import numpy as np
import pytest

from repro.analysis.bitpos import run_bit_position_study
from repro.hw.bits import SIGN_BIT


class TestBitPositionStudy:
    @pytest.fixture(scope="class")
    def study(self, trained_mlp, mlp_eval_arrays):
        images, labels = mlp_eval_arrays
        return run_bit_position_study(
            trained_mlp,
            images,
            labels,
            n_faults=20,
            trials=3,
            seed=0,
            positions=[0, 10, 22, 25, 28, 30, SIGN_BIT],
        )

    def test_shapes(self, study):
        assert study.bit_positions.size == 7
        assert study.accuracies.shape == (7, 3)
        assert study.n_faults == 20

    def test_exponent_msb_most_damaging(self, study):
        """Paper Section III: MSB exponent flips dominate the damage."""
        means = dict(zip(study.bit_positions.tolist(), study.mean_by_position()))
        assert means[30] < means[0] - 0.1  # exponent MSB << mantissa LSB
        assert means[30] <= means[10] + 1e-9

    def test_mantissa_flips_nearly_harmless(self, study):
        means = dict(zip(study.bit_positions.tolist(), study.mean_by_position()))
        assert means[0] >= study.clean_accuracy - 0.05

    def test_mean_by_field(self, study):
        fields = study.mean_by_field()
        assert set(fields) == {"sign", "exponent", "mantissa"}
        assert fields["exponent"] < fields["mantissa"]

    def test_most_damaging_positions(self, study):
        worst = study.most_damaging_positions(k=2)
        assert 30 in worst  # the exponent MSB must be among the worst

    def test_weights_unchanged(self, trained_mlp, mlp_eval_arrays):
        images, labels = mlp_eval_arrays
        before = trained_mlp.state_dict()
        run_bit_position_study(
            trained_mlp, images, labels, n_faults=5, trials=1, seed=0, positions=[30]
        )
        after = trained_mlp.state_dict()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])

    def test_validation(self, trained_mlp, mlp_eval_arrays):
        images, labels = mlp_eval_arrays
        with pytest.raises(ValueError):
            run_bit_position_study(trained_mlp, images, labels, n_faults=0)
        with pytest.raises(ValueError):
            run_bit_position_study(
                trained_mlp, images, labels, n_faults=1, positions=[33]
            )
        with pytest.raises(ValueError):
            run_bit_position_study(
                trained_mlp, images, labels, n_faults=1, positions=[]
            )
