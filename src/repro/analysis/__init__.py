"""Resilience analysis tools: per-layer sweeps, activation distributions
under fault, bit-position sensitivity, and text reporting."""

from repro.analysis.activations import (
    FaultyActivationStats,
    capture_activation_distribution,
)
from repro.analysis.bitpos import BitPositionResult, run_bit_position_study
from repro.analysis.perclass import PerClassResult, run_per_class_analysis
from repro.analysis.outcomes import (
    OutcomeBreakdown,
    OutcomeCounts,
    run_outcome_analysis,
)
from repro.analysis.layerwise import (
    LayerwiseResult,
    cliff_fault_rate,
    run_layerwise_analysis,
)
from repro.analysis.reporting import (
    format_box_table,
    format_comparison_table,
    format_curve_table,
    format_histogram,
    format_rate,
    format_table,
)

__all__ = [
    "BitPositionResult",
    "FaultyActivationStats",
    "LayerwiseResult",
    "OutcomeBreakdown",
    "OutcomeCounts",
    "PerClassResult",
    "capture_activation_distribution",
    "cliff_fault_rate",
    "format_box_table",
    "format_comparison_table",
    "format_curve_table",
    "format_histogram",
    "format_rate",
    "format_table",
    "run_bit_position_study",
    "run_outcome_analysis",
    "run_per_class_analysis",
    "run_layerwise_analysis",
]
