"""Fault-aware training (the related-work baseline, paper Section I).

The paper contrasts FT-ClipAct with software-level fault-aware training
(e.g. MATIC), whose drawbacks motivate the clipping approach: it needs
the training dataset and a retraining pass per deployment.  We implement
it so the comparison is concrete: during training, every batch runs its
forward and backward pass with a fresh set of random bit flips injected
into the weight memory, and the resulting gradients update the *clean*
weights — the network learns to be insensitive to bit-level corruption.

Empirically (see the FAT ablation benchmark) this helps little against
*float32* weight faults, and that is itself evidence for the paper's
thesis: an exponent-MSB flip scales a weight by 2^128, and no finite
gradient adjustment makes a network tolerant to a 1e38 activation —
the faulty value must be *bounded* (clipped) instead.  FAT's natural
habitat is small-perturbation regimes (quantized weights, voltage
scaling, stuck-at cells), matching where its source papers apply it.
"""

from __future__ import annotations

import numpy as np

from repro.core.campaign import FaultSampler, random_bitflip_sampler
from repro.data.loader import DataLoader
from repro.hw.injector import FaultInjector
from repro.hw.memory import WeightMemory
from repro.nn.module import Module
from repro.optim.optimizer import Optimizer
from repro.optim.trainer import Trainer
from repro.utils.rng import SeedTree
from repro.utils.validation import check_probability

__all__ = ["FaultAwareTrainer"]


class FaultAwareTrainer(Trainer):
    """Trainer that exposes every batch to transient weight-memory faults.

    ``train_fault_rate`` is the per-bit flip probability applied during
    each batch's forward/backward; ``clean_batch_fraction`` interleaves
    fault-free batches so the network keeps fitting the clean task.
    """

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        train_fault_rate: float = 1e-5,
        clean_batch_fraction: float = 0.5,
        sampler: "FaultSampler | None" = None,
        seed: int = 0,
        **trainer_kwargs,
    ):
        trainer_kwargs.setdefault("grad_clip", 5.0)
        super().__init__(model, optimizer, **trainer_kwargs)
        check_probability("train_fault_rate", train_fault_rate)
        check_probability("clean_batch_fraction", clean_batch_fraction)
        self.train_fault_rate = float(train_fault_rate)
        self.clean_batch_fraction = float(clean_batch_fraction)
        self._sampler = sampler if sampler is not None else random_bitflip_sampler()
        self._memory = WeightMemory.from_model(model)
        self._injector = FaultInjector(self._memory)
        self._tree = SeedTree(seed)
        self._batch_counter = 0

    def train_epoch(self, loader: DataLoader) -> tuple[float, float]:
        """One epoch; each batch sees a fresh transient fault set."""
        self.model.train()
        total_loss = 0.0
        correct = 0
        total = 0
        for images, labels in loader:
            self._batch_counter += 1
            rng = self._tree.generator(f"batch/{self._batch_counter}")
            inject = rng.random() >= self.clean_batch_fraction

            self.optimizer.zero_grad()
            record = None
            if inject:
                fault_set = self._sampler(self._memory, self.train_fault_rate, rng)
                record = self._injector.inject(fault_set)
            try:
                with np.errstate(over="ignore", invalid="ignore"):
                    logits = self.model(images)
                    loss, grad = self.loss_fn(logits, labels)
                    # Skip the update if faults blew the loss up to inf/nan:
                    # the gradient carries no usable signal.
                    if np.isfinite(loss):
                        self.model.backward(grad)
                    else:
                        self.optimizer.zero_grad()
            finally:
                if record is not None:
                    self._injector.restore(record)
            # Gradients computed under faulty weights can be astronomically
            # large or non-finite even when the loss was finite; drop them
            # rather than poisoning the optimizer's moment estimates.
            for param in self.optimizer.parameters:
                if param.grad is not None and not np.isfinite(param.grad).all():
                    param.grad = None
            self._clip_gradients()
            self.optimizer.step()

            batch = labels.shape[0]
            if np.isfinite(loss):
                total_loss += loss * batch
                correct += int((np.argmax(logits, axis=1) == labels).sum())
            total += batch
        if total == 0:
            raise ValueError("loader produced no samples")
        return total_loss / total, correct / total
