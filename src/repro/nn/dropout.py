"""Inverted dropout (active only in training mode)."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.utils.rng import as_generator
from repro.utils.validation import check_probability

__all__ = ["Dropout"]


class Dropout(Module):
    """Zero each element with probability ``p`` and rescale by ``1/(1-p)``.

    A no-op in eval mode, so fault-injection experiments (always run in
    eval mode) see the deterministic network.
    """

    def __init__(self, p: float = 0.5, seed: "int | np.random.Generator | None" = None):
        super().__init__()
        check_probability("p", p)
        if p >= 1.0:
            raise ValueError("p must be strictly below 1 (p=1 drops everything)")
        self.p = float(p)
        self._rng = as_generator(seed)
        self._mask: "np.ndarray | None" = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(np.float32) / keep
        self._mask = mask
        return x * mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = np.asarray(grad_output, dtype=np.float32)
        if not self.training or self.p == 0.0:
            return grad
        if self._mask is None:
            raise RuntimeError("backward called before forward in training mode")
        return grad * self._mask

    def extra_repr(self) -> str:
        return f"p={self.p}"
