"""Fault-injection campaigns: rate sweeps with repeated trials.

A campaign evaluates one model under one fault sampler across a grid of
fault rates, with ``trials`` independent injections per rate, producing a
:class:`~repro.core.metrics.ResilienceCurve`.  Seeds are derived from a
:class:`~repro.utils.rng.SeedTree`, so two campaigns created with the same
seed share *common random numbers*: trial ``j`` at rate ``i`` draws the
same fault locations in both — essential for the threshold fine-tuning
sweep, where AUC differences between thresholds must not be noise.

Execution is delegated to :class:`~repro.core.executor.CampaignExecutor`
via :class:`~repro.core.executor.WeightFaultCellTask` — the same
substrate that runs the quantized, activation-fault and cross-campaign
sweeps — so ``workers=`` fans any campaign over a process pool with
bit-identical results, and several campaigns (layerwise layers,
mitigation variants) can share one pool through
:meth:`~repro.core.executor.CampaignExecutor.run_tasks`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro import nn
from repro.core.metrics import ResilienceCurve, evaluate_accuracy_arrays
from repro.hw.faultmodels import FaultModel, FaultSet, RandomBitFlip
from repro.hw.injector import FaultInjector
from repro.hw.memory import WeightMemory
from repro.utils.validation import check_positive

__all__ = [
    "FaultSampler",
    "RandomBitFlipSampler",
    "FaultModelSampler",
    "random_bitflip_sampler",
    "fault_model_sampler",
    "CampaignConfig",
    "FaultInjectionCampaign",
    "run_campaign",
    "default_fault_rates",
]

# A fault sampler draws the *effective* fault set for one trial at one rate.
# Protection baselines (ECC/TMR) plug in here: they sample raw faults over
# their enlarged protected bit space and return only the survivors, and
# declarative scenarios (repro.scenarios.SpecFaultSampler) compile their
# fault_model block to this same protocol — stuck-at / burst / targeted
# models reach any weight-fault campaign through it.
#
# Samplers are expressed as module-level callable classes rather than
# closures so they pickle — a parallel campaign (workers > 1) ships its
# sampler to every worker process.
FaultSampler = Callable[[WeightMemory, float, np.random.Generator], FaultSet]


class RandomBitFlipSampler:
    """The paper's fault model: independent random bit flips."""

    def __call__(
        self, memory: WeightMemory, rate: float, rng: np.random.Generator
    ) -> FaultSet:
        return RandomBitFlip(rate).sample(memory, rng)


class FaultModelSampler:
    """Adapts a rate->FaultModel factory into a :data:`FaultSampler`.

    Picklable whenever ``factory`` is (module-level functions and
    functools.partial over them are; lambdas are not).
    """

    def __init__(self, factory: Callable[[float], FaultModel]):
        self.factory = factory

    def __call__(
        self, memory: WeightMemory, rate: float, rng: np.random.Generator
    ) -> FaultSet:
        return self.factory(rate).sample(memory, rng)


def random_bitflip_sampler() -> FaultSampler:
    """The paper's fault model: independent random bit flips."""
    return RandomBitFlipSampler()


def fault_model_sampler(factory: Callable[[float], FaultModel]) -> FaultSampler:
    """Adapt a rate->FaultModel factory into a :data:`FaultSampler`."""
    return FaultModelSampler(factory)


def default_fault_rates(
    low: float = 1e-7, high: float = 1e-4, points_per_decade: int = 2
) -> np.ndarray:
    """Log-spaced fault-rate grid, like the paper's 1e-8..1e-5 sweeps.

    Our scaled-down networks hold fewer weight bits than the paper's
    full-size models, so the default grid is shifted upward by roughly the
    bit-count ratio (see DESIGN.md) to land on the same accuracy cliff.
    """
    check_positive("low", low)
    if high <= low:
        raise ValueError(f"high ({high}) must exceed low ({low})")
    check_positive("points_per_decade", points_per_decade)
    decades = np.log10(high) - np.log10(low)
    count = int(round(decades * points_per_decade)) + 1
    return np.logspace(np.log10(low), np.log10(high), count)


@dataclass(frozen=True)
class CampaignConfig:
    """Everything that determines a campaign run (except the model)."""

    fault_rates: Sequence[float] = field(default_factory=lambda: tuple(default_fault_rates()))
    trials: int = 20
    seed: int = 0
    batch_size: int = 128

    def __post_init__(self) -> None:
        rates = np.asarray(list(self.fault_rates), dtype=np.float64)
        if rates.size == 0:
            raise ValueError("fault_rates must be non-empty")
        if np.any(rates <= 0):
            raise ValueError("fault rates must be positive (rate 0 is implicit)")
        if np.any(np.diff(rates) <= 0):
            raise ValueError("fault_rates must be strictly increasing")
        check_positive("trials", self.trials)
        check_positive("batch_size", self.batch_size)
        object.__setattr__(self, "fault_rates", tuple(float(r) for r in rates))


class FaultInjectionCampaign:
    """Reusable campaign runner bound to one model and evaluation set."""

    def __init__(
        self,
        model: nn.Module,
        memory: WeightMemory,
        images: np.ndarray,
        labels: np.ndarray,
        config: "CampaignConfig | None" = None,
    ):
        self.model = model
        self.memory = memory
        self.images = np.asarray(images, dtype=np.float32)
        self.labels = np.asarray(labels, dtype=np.int64)
        if self.images.shape[0] != self.labels.shape[0]:
            raise ValueError("images and labels disagree on sample count")
        self.config = config if config is not None else CampaignConfig()
        self.injector = FaultInjector(memory)
        self._clean_accuracy: "float | None" = None

    @property
    def clean_accuracy(self) -> float:
        """Fault-free accuracy on the evaluation set (computed lazily)."""
        if self._clean_accuracy is None:
            self._clean_accuracy = evaluate_accuracy_arrays(
                self.model, self.images, self.labels, self.config.batch_size
            )
        return self._clean_accuracy

    def invalidate_clean_accuracy(self) -> None:
        """Force re-evaluation (call after changing thresholds/weights)."""
        self._clean_accuracy = None

    def run(
        self,
        sampler: "FaultSampler | None" = None,
        label: str = "",
        workers: int = 1,
        progress: "Callable | None" = None,
        checkpoint: "str | None" = None,
        suffix: bool = True,
        batch_k: int = 0,
    ) -> ResilienceCurve:
        """Execute the full (rates x trials) sweep.

        The per-(rate, trial) seed depends only on the campaign seed and
        the (rate index, trial index) pair — not on the sampler — so
        different mitigation variants evaluated with the same config see
        identical raw randomness (common random numbers).

        ``workers`` fans the grid across a process pool (``0`` = one per
        CPU core); the result is bit-identical to the serial run.
        ``progress`` receives a :class:`~repro.core.executor.CellResult`
        per completed cell and ``checkpoint`` names a JSON file enabling
        resume of an interrupted sweep — see
        :class:`~repro.core.executor.CampaignExecutor`.  ``suffix``
        controls the suffix re-execution engine
        (:mod:`repro.core.suffix`) — an execution detail: results are
        bit-identical with it on or off.  The flag governs the serial
        path only; worker processes always run with the engine on (it
        is excluded from task payloads so checkpoints interoperate
        across engine settings) — set ``REPRO_NO_SUFFIX=1`` to disable
        it everywhere, workers included.  ``batch_k > 1`` lets the
        runner evaluate that many cells per dispatch through the
        bitwise-verified batched kernel (:mod:`repro.core.batched`) —
        also bit-identical, with ``REPRO_NO_BATCHED=1`` as the
        everywhere-off switch.
        """
        from repro.core.executor import CampaignExecutor

        executor = CampaignExecutor(
            workers=workers, progress=progress, checkpoint=checkpoint
        )
        return executor.run(
            self, sampler=sampler, label=label, suffix=suffix, batch_k=batch_k
        )


def run_campaign(
    model: nn.Module,
    memory: WeightMemory,
    images: np.ndarray,
    labels: np.ndarray,
    config: "CampaignConfig | None" = None,
    sampler: "FaultSampler | None" = None,
    label: str = "",
    workers: int = 1,
    progress: "Callable | None" = None,
    checkpoint: "str | None" = None,
    suffix: bool = True,
    batch_k: int = 0,
) -> ResilienceCurve:
    """Functional one-shot wrapper around :class:`FaultInjectionCampaign`."""
    campaign = FaultInjectionCampaign(model, memory, images, labels, config)
    return campaign.run(
        sampler=sampler,
        label=label,
        workers=workers,
        progress=progress,
        checkpoint=checkpoint,
        suffix=suffix,
        batch_k=batch_k,
    )
