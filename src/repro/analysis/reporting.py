"""Plain-text reporting: the benchmark harness prints the paper's rows
and series through these helpers (no plotting dependencies offline)."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.metrics import ResilienceCurve

__all__ = [
    "format_table",
    "format_curve_table",
    "format_comparison_table",
    "format_box_table",
    "format_histogram",
    "format_rate",
    "format_scenario_table",
]


def format_rate(rate: float) -> str:
    """Render a fault rate like the paper: ``5.0e-07``."""
    if rate == 0:
        return "0"
    return f"{rate:.1e}"


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Monospace table with per-column width fitting."""
    rendered_rows = [[_render(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append(line(["-" * width for width in widths]))
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)


def _render(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) < 1e-3 or abs(cell) >= 1e5:
            return f"{cell:.3e}"
        return f"{cell:.4f}"
    return str(cell)


def format_curve_table(curve: ResilienceCurve, title: str = "") -> str:
    """Accuracy-vs-fault-rate table for one curve (mean over trials)."""
    rows = [
        [format_rate(row["fault_rate"]), row["mean"], row["min"], row["max"]]
        for row in curve.summary_rows()
    ]
    rows.insert(0, ["0", curve.clean_accuracy, curve.clean_accuracy, curve.clean_accuracy])
    return format_table(
        ["fault_rate", "mean_acc", "min_acc", "max_acc"],
        rows,
        title=title or (curve.label and f"curve: {curve.label}") or "",
    )


def format_comparison_table(
    curves: Sequence[ResilienceCurve], labels: "Sequence[str] | None" = None, title: str = ""
) -> str:
    """Side-by-side mean accuracies of several curves on a shared rate grid."""
    if not curves:
        raise ValueError("need at least one curve")
    base_rates = curves[0].fault_rates
    for curve in curves[1:]:
        if not np.array_equal(curve.fault_rates, base_rates):
            raise ValueError("curves must share the same fault-rate grid")
    names = list(labels) if labels is not None else [
        curve.label or f"curve{i}" for i, curve in enumerate(curves)
    ]
    headers = ["fault_rate"] + names
    rows: list[list[object]] = [
        ["0"] + [curve.clean_accuracy for curve in curves]
    ]
    means = [curve.mean_accuracies() for curve in curves]
    for index, rate in enumerate(base_rates):
        rows.append([format_rate(float(rate))] + [m[index] for m in means])
    rows.append(["AUC"] + [curve.auc() for curve in curves])
    return format_table(headers, rows, title=title)


def format_box_table(curve: ResilienceCurve, title: str = "") -> str:
    """Box-plot statistics per fault rate (paper Fig. 7b/7c style)."""
    rows = []
    for rate, box in zip(curve.fault_rates, curve.box_stats()):
        rows.append(
            [format_rate(float(rate)), box.minimum, box.q1, box.median, box.q3, box.maximum]
        )
    return format_table(
        ["fault_rate", "min", "q1", "median", "q3", "max"], rows, title=title
    )


def format_scenario_table(results: Sequence, title: str = "") -> str:
    """One row per scenario of a :func:`repro.scenarios.run_scenarios` run.

    ``results`` are :class:`~repro.scenarios.compile.ScenarioResult`
    objects; the table summarizes each expanded scenario (model,
    campaign kind, mitigation variant, fault model) with its clean
    accuracy, the mean accuracy at the sweep's low and high ends, and
    the AUC — the cross-scenario counterpart of
    :func:`format_comparison_table`, which requires a shared rate grid.
    """
    rows = []
    for result in results:
        spec = result.spec
        means = result.curve.mean_accuracies()
        fault = spec.fault_model.name
        if spec.fault_model.params:
            fault += "(" + ",".join(
                f"{key}={value}"
                for key, value in sorted(spec.fault_model.params.items())
            ) + ")"
        rows.append(
            [
                spec.name,
                spec.model,
                spec.campaign,
                spec.variant,
                fault,
                result.curve.clean_accuracy,
                float(means[0]),
                float(means[-1]),
                result.curve.auc(),
            ]
        )
    return format_table(
        [
            "scenario", "model", "campaign", "variant", "fault_model",
            "clean", "acc@low", "acc@high", "AUC",
        ],
        rows,
        title=title,
    )


def format_histogram(
    counts: np.ndarray, edges: np.ndarray, width: int = 40, title: str = ""
) -> str:
    """ASCII histogram (used for the Fig. 3 activation distributions)."""
    counts = np.asarray(counts)
    edges = np.asarray(edges)
    if counts.size + 1 != edges.size:
        raise ValueError("edges must have one more element than counts")
    peak = counts.max() if counts.size else 0
    lines = [title] if title else []
    for index, count in enumerate(counts):
        bar = "#" * (int(round(width * count / peak)) if peak else 0)
        lines.append(
            f"[{edges[index]:>8.2f}, {edges[index + 1]:>8.2f})  {count:>8d}  {bar}"
        )
    return "\n".join(lines)
