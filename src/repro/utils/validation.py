"""Argument-validation helpers shared across the library.

These helpers raise uniform, descriptive exceptions so that misuse of the
public API fails close to the call site with an actionable message rather
than deep inside numpy broadcasting.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_in_choices",
    "check_ndim",
    "check_dtype",
    "as_pair",
]


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``; return it for chaining."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Require ``value >= 0``; return it for chaining."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Require ``0 <= value <= 1``; return it for chaining."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return float(value)


def check_in_choices(name: str, value: Any, choices: Iterable[Any]) -> Any:
    """Require ``value`` to be one of ``choices``; return it for chaining."""
    options = tuple(choices)
    if value not in options:
        raise ValueError(f"{name} must be one of {options!r}, got {value!r}")
    return value


def check_ndim(name: str, array: np.ndarray, ndim: int) -> np.ndarray:
    """Require ``array.ndim == ndim``; return the array for chaining."""
    if array.ndim != ndim:
        raise ValueError(
            f"{name} must have {ndim} dimensions, got shape {array.shape!r}"
        )
    return array


def check_dtype(name: str, array: np.ndarray, dtype: "np.dtype | type") -> np.ndarray:
    """Require ``array.dtype == dtype``; return the array for chaining."""
    expected = np.dtype(dtype)
    if array.dtype != expected:
        raise TypeError(f"{name} must have dtype {expected}, got {array.dtype}")
    return array


def as_pair(name: str, value: "int | Sequence[int]") -> tuple[int, int]:
    """Normalise an int-or-pair argument (kernel size, stride, ...) to a pair."""
    if isinstance(value, (int, np.integer)):
        return (int(value), int(value))
    pair = tuple(int(item) for item in value)
    if len(pair) != 2:
        raise ValueError(f"{name} must be an int or a pair, got {value!r}")
    return pair  # type: ignore[return-value]
