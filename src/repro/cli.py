"""Command-line interface: ``python -m repro <command>``.

Wraps the canonical experiment setup so the paper's workflow is scriptable
without writing Python:

* ``train``     — train (or load from cache) a canonical network;
* ``profile``   — Step 1: per-layer activation statistics / ACT_max;
* ``harden``    — Steps 1-3: produce fine-tuned clipping thresholds;
* ``campaign``  — fault-injection sweep on the chosen variant;
* ``scenarios`` — run a declarative scenario file (or bundled spec) —
  every expanded scenario through one shared executor pool; ``--shard
  i/N`` executes one shard of an N-way split into a segmented run
  directory (see docs/SCENARIOS.md);
* ``merge``     — reassemble a sharded run directory into canonical
  merged results, byte-identical to the unsharded run;
* ``report``    — render a finished run directory into one static,
  self-contained HTML diagnostics page (see docs/RESULTS.md);
* ``layerwise`` — per-layer sensitivity analysis (paper Fig. 3);
* ``bitpos``    — bit-position sensitivity study;
* ``outcomes``  — masked / benign / SDC / DUE fault-outcome taxonomy;
* ``serve``     — long-lived campaign daemon with content-addressed
  result memoization (see docs/SERVICE.md);
* ``submit`` / ``status`` / ``fetch`` — thin HTTP client for a running
  daemon: post a spec, poll progress, materialize the finished run
  directory byte-identical to a direct ``scenarios`` run.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

__all__ = ["main", "build_parser"]

_MODELS = ("lenet5", "alexnet", "vgg16")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing and docs)."""
    from repro.experiments import CAMPAIGN_VARIANTS

    parser = argparse.ArgumentParser(
        prog="repro",
        description="FT-ClipAct (DATE 2020) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_model_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument("--model", default="lenet5", choices=_MODELS)

    def add_workers_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--workers",
            type=int,
            default=1,
            help="campaign worker processes (0 = one per CPU core); results "
            "are bit-identical at any worker count",
        )

    def add_supervision_args(p: argparse.ArgumentParser) -> None:
        from repro.core.executor import ON_CELL_ERROR_CHOICES

        p.add_argument(
            "--max-retries",
            type=int,
            default=None,
            help="retries per cell before quarantine/abort (default 2, or "
            "REPRO_MAX_RETRIES); see docs/FAULT_TOLERANCE.md",
        )
        p.add_argument(
            "--cell-timeout",
            type=float,
            default=None,
            help="wall-clock seconds per cell before its dispatch is killed "
            "and retried (default: none, or REPRO_CELL_TIMEOUT)",
        )
        p.add_argument(
            "--on-cell-error",
            default=None,
            choices=ON_CELL_ERROR_CHOICES,
            help="what a cell exception does: abort re-raises (default, or "
            "REPRO_ON_CELL_ERROR), retry retries then quarantines, "
            "quarantine gives up immediately; quarantined cells become "
            "failed outcomes in results instead of killing the run",
        )
        p.add_argument(
            "--chaos",
            default=None,
            metavar="SPEC",
            help="deterministic fault injection into the executor itself "
            "(sets REPRO_CHAOS), e.g. 'kill=0.2,raise=0.1,seed=7' — a "
            "test/validation knob proving runs recover bit-identically "
            "(see docs/FAULT_TOLERANCE.md)",
        )

    p_train = sub.add_parser("train", help="train or load a canonical network")
    add_model_arg(p_train)
    p_train.add_argument("--retrain", action="store_true", help="ignore the cache")

    p_profile = sub.add_parser("profile", help="Step 1: activation statistics")
    add_model_arg(p_profile)
    p_profile.add_argument("--images", type=int, default=200)

    p_harden = sub.add_parser("harden", help="Steps 1-3: tuned clipping thresholds")
    add_model_arg(p_harden)
    add_workers_arg(p_harden)
    p_harden.add_argument("--json", dest="json_path", default=None,
                          help="write thresholds to this JSON file")

    p_campaign = sub.add_parser("campaign", help="fault-injection sweep")
    add_model_arg(p_campaign)
    add_workers_arg(p_campaign)
    p_campaign.add_argument(
        "--variant", default="unprotected", choices=CAMPAIGN_VARIANTS
    )
    p_campaign.add_argument("--trials", type=int, default=10)
    p_campaign.add_argument("--eval-images", type=int, default=200)
    p_campaign.add_argument("--seed", type=int, default=42)
    p_campaign.add_argument(
        "--checkpoint",
        default=None,
        help="JSON file recording completed cells; re-running with the same "
        "configuration resumes the sweep",
    )
    p_campaign.add_argument(
        "--progress", action="store_true", help="print one line per completed cell"
    )
    p_campaign.add_argument(
        "--mode",
        default="exact",
        choices=("exact", "adaptive"),
        help="exact runs the full (rates x trials) grid; adaptive stops each "
        "rate's trial family once its accuracy confidence interval is tight "
        "enough (see docs/SCENARIOS.md)",
    )
    p_campaign.add_argument(
        "--ci-halfwidth",
        type=float,
        default=0.02,
        help="adaptive mode: stop a family once its CI half-width falls "
        "under this tolerance",
    )
    p_campaign.add_argument(
        "--batch-k",
        type=int,
        default=0,
        help="fault variants evaluated per dispatch through the "
        "bitwise-verified batched kernel (0/1 = per-cell; adaptive mode "
        "treats 0 as its default chunk of 8)",
    )
    add_supervision_args(p_campaign)

    p_scenarios = sub.add_parser(
        "scenarios",
        help="run a declarative scenario spec file (see docs/SCENARIOS.md)",
    )
    p_scenarios.add_argument(
        "spec",
        nargs="?",
        default=None,
        help="path to a YAML/JSON scenario file, or the name of a bundled "
        "spec (--list shows them)",
    )
    p_scenarios.add_argument(
        "--list", action="store_true", help="list bundled scenario specs"
    )
    p_scenarios.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes shared by every scenario in the matrix "
        "(0 = one per CPU core; default: the file's workers key, else 1); "
        "results are bit-identical at any worker count",
    )
    p_scenarios.add_argument(
        "--checkpoint",
        default=None,
        help="one JSON file recording completed cells across ALL scenarios; "
        "re-running with the same spec resumes the whole matrix",
    )
    p_scenarios.add_argument(
        "--progress", action="store_true", help="print one line per completed cell"
    )
    p_scenarios.add_argument(
        "--out",
        default=None,
        help="directory for per-scenario result JSON files plus summary.json",
    )
    p_scenarios.add_argument(
        "--shard",
        default=None,
        metavar="i/N",
        help="execute only shard i of an N-way split (1-based) into the "
        "--out run directory; run the other shards on any hosts, then "
        "`repro merge <out>` (see docs/SCENARIOS.md)",
    )
    p_scenarios.add_argument(
        "--no-store",
        action="store_true",
        help="skip the per-cell result store (store/cells.rcs and the "
        "append-only segments; see docs/RESULTS.md)",
    )
    add_supervision_args(p_scenarios)

    p_merge = sub.add_parser(
        "merge",
        help="merge a sharded run directory into canonical results "
        "(see docs/SCENARIOS.md)",
    )
    p_merge.add_argument(
        "run_dir",
        help="run directory holding shards/<i>-of-<N>/ segments written "
        "by `repro scenarios --shard`",
    )
    p_merge.add_argument(
        "--no-store",
        action="store_true",
        help="skip reassembling the per-cell result store "
        "(see docs/RESULTS.md)",
    )

    p_report = sub.add_parser(
        "report",
        help="render a finished run directory into a static HTML "
        "diagnostics page (see docs/RESULTS.md)",
    )
    p_report.add_argument(
        "run_dir",
        help="run directory holding summary.json (an unsharded "
        "`repro scenarios --out` run or a `repro merge`d one)",
    )
    p_report.add_argument(
        "--out",
        default=None,
        help="output HTML file (default: <run_dir>/report.html)",
    )
    p_report.add_argument(
        "--bench",
        default=None,
        metavar="DIR",
        help="directory of BENCH_*.json per-SHA histories to diff "
        "against (e.g. benchmarks/results)",
    )

    p_layer = sub.add_parser("layerwise", help="per-layer sensitivity (Fig. 3)")
    add_model_arg(p_layer)
    add_workers_arg(p_layer)
    p_layer.add_argument("--layers", nargs="*", default=None)
    p_layer.add_argument("--trials", type=int, default=5)
    p_layer.add_argument("--eval-images", type=int, default=128)

    p_bitpos = sub.add_parser("bitpos", help="bit-position sensitivity study")
    add_model_arg(p_bitpos)
    p_bitpos.add_argument("--faults", type=int, default=20)
    p_bitpos.add_argument("--trials", type=int, default=5)
    p_bitpos.add_argument("--eval-images", type=int, default=128)

    p_outcomes = sub.add_parser(
        "outcomes", help="masked / benign / SDC / DUE taxonomy"
    )
    add_model_arg(p_outcomes)
    p_outcomes.add_argument("--trials", type=int, default=5)
    p_outcomes.add_argument("--eval-images", type=int, default=128)
    p_outcomes.add_argument("--seed", type=int, default=55)

    p_serve = sub.add_parser(
        "serve",
        help="run the campaign-as-a-service daemon (see docs/SERVICE.md)",
    )
    p_serve.add_argument(
        "--root",
        default="service-runs",
        help="directory of the on-disk result cache; each memoized "
        "campaign is an ordinary run directory under <root>/runs/<id>/",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port",
        type=int,
        default=8972,
        help="TCP port (0 = bind an ephemeral port; the chosen port is "
        "printed on startup)",
    )
    add_workers_arg(p_serve)
    p_serve.add_argument(
        "--slots",
        type=int,
        default=1,
        help="campaigns executing concurrently, one persistent warm "
        "executor pool each",
    )
    p_serve.add_argument(
        "--queue-limit",
        type=int,
        default=8,
        help="queued campaigns beyond the running ones before new "
        "submissions are refused with 503",
    )
    p_serve.add_argument(
        "--smoke",
        action="store_true",
        help="serve with the tiny smoke_context() artifacts (synthetic "
        "data, one-epoch training) — a test/CI knob like --chaos",
    )
    add_supervision_args(p_serve)

    def add_url_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--url",
            default=None,
            help="daemon URL (default: $REPRO_SERVE_URL, else "
            "http://127.0.0.1:8972)",
        )

    p_submit = sub.add_parser(
        "submit", help="submit a scenario spec to a running daemon"
    )
    p_submit.add_argument(
        "spec",
        help="path to a YAML/JSON scenario file, or the name of a "
        "bundled spec (`repro scenarios --list` shows them)",
    )
    add_url_arg(p_submit)
    p_submit.add_argument(
        "--wait",
        action="store_true",
        help="poll until the campaign completes (exit 1 if it failed)",
    )
    p_submit.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="give up on --wait after this many seconds",
    )

    p_status = sub.add_parser(
        "status", help="poll a running daemon for campaign or service state"
    )
    p_status.add_argument(
        "id",
        nargs="?",
        default=None,
        help="a run id from `repro submit`; omitted, prints the daemon's "
        "/stats counters instead",
    )
    add_url_arg(p_status)

    p_fetch = sub.add_parser(
        "fetch",
        help="download a finished campaign into a local run directory, "
        "byte-identical to a direct `repro scenarios --out` run",
    )
    p_fetch.add_argument("id", help="a run id from `repro submit`")
    add_url_arg(p_fetch)
    p_fetch.add_argument(
        "--out",
        default=None,
        help="target run directory (default: ./<id>/)",
    )

    return parser


def _cell_progress_printer(show_label: bool = False):
    """One line per completed campaign cell (the --progress format).

    Shared by ``campaign`` and ``scenarios``; ``show_label`` prefixes
    the owning scenario's name in cross-campaign sweeps.
    """

    def progress(cell):
        resumed = " (checkpointed)" if cell.from_checkpoint else ""
        failed = " FAILED (quarantined)" if cell.failed else ""
        label = f"{cell.campaign_label} " if show_label else ""
        print(
            f"[{cell.completed}/{cell.total}] {label}"
            f"rate={cell.fault_rate:.2e} trial={cell.trial} "
            f"accuracy={cell.accuracy:.4f}{resumed}{failed}"
        )

    return progress


def _apply_chaos(args: argparse.Namespace) -> "int | None":
    """Validate ``--chaos`` and export it as ``REPRO_CHAOS``.

    Returns an exit code on a bad spec, ``None`` on success.  The spec
    travels by environment so worker processes (which re-read it in
    ``_run_task_cells``) see the same policy as the parent.
    """
    import os

    from repro.core.chaos import CHAOS_ENV_VAR, ChaosPolicy

    if args.chaos is None:
        return None
    try:
        ChaosPolicy.parse(args.chaos)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    os.environ[CHAOS_ENV_VAR] = args.chaos
    return None


def _report_quarantined(records) -> None:
    """Print one line per quarantined cell (failed outcomes)."""
    if not records:
        return
    print(f"{len(records)} cell(s) quarantined as failed outcomes:")
    for cell in records:
        error = f" ({cell['error']})" if cell.get("error") else ""
        print(
            f"  {cell['task']}: rate_index={cell['rate_index']} "
            f"trial={cell['trial']} reason={cell['reason']} "
            f"attempts={cell['attempts']}{error}"
        )


def _report_scenario_failures(results) -> None:
    """Surface per-scenario quarantined cells after a table print."""
    records = [
        dict(cell, task=result.name)
        for result in results
        for cell in getattr(result, "failed", ())
    ]
    _report_quarantined(records)


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.experiments import EXPERIMENT_CONFIGS
    from repro.models import get_pretrained

    bundle = get_pretrained(
        EXPERIMENT_CONFIGS[args.model], retrain=args.retrain, verbose=True
    )
    source = "cache" if bundle.from_cache else "training"
    print(
        f"{args.model}: clean test accuracy {bundle.clean_accuracy:.4f} "
        f"({bundle.model.num_parameters()} parameters, from {source})"
    )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.analysis.reporting import format_table
    from repro.core.profiling import profile_activations
    from repro.data.dataset import Subset
    from repro.data.loader import DataLoader
    from repro.experiments import clone_model, experiment_bundle

    bundle = experiment_bundle(args.model)
    model = clone_model(bundle)
    subset = Subset(bundle.val_set, range(min(args.images, len(bundle.val_set))))
    profile = profile_activations(model, DataLoader(subset, batch_size=128))
    rows = [
        [layer, f"{s.mean:.4f}", f"{s.std:.4f}", f"{s.percentile(99):.4f}", f"{s.act_max:.4f}"]
        for layer, s in profile.stats.items()
    ]
    print(
        format_table(
            ["layer", "mean", "std", "p99", "ACT_max"],
            rows,
            title=f"{args.model}: activation profile over {profile.num_images} images",
        )
    )
    return 0


def _cmd_harden(args: argparse.Namespace) -> int:
    from repro.analysis.reporting import format_table
    from repro.experiments import (
        default_harden_config,
        experiment_bundle,
        hardened_clone,
    )

    bundle = experiment_bundle(args.model)
    _, thresholds, act_max = hardened_clone(
        bundle, default_harden_config(workers=args.workers)
    )
    rows = [
        [layer, f"{act_max[layer]:.4f}", f"{threshold:.4f}"]
        for layer, threshold in thresholds.items()
    ]
    print(
        format_table(
            ["layer", "ACT_max", "tuned T"],
            rows,
            title=f"{args.model}: FT-ClipAct thresholds",
        )
    )
    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump(
                {"thresholds": thresholds, "act_max": act_max}, handle, indent=2
            )
        print(f"thresholds written to {args.json_path}")
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.analysis.reporting import format_curve_table
    from repro.core.campaign import CampaignConfig
    from repro.core.executor import CampaignExecutor, WeightFaultCellTask
    from repro.core.quantized import QuantizedCellTask
    from repro.experiments import (
        experiment_bundle,
        paper_fault_rates,
        prepare_campaign_variant,
    )
    from repro.hw.memory import WeightMemory

    code = _apply_chaos(args)
    if code is not None:
        return code
    bundle = experiment_bundle(args.model)
    images, labels = bundle.test_set.arrays()
    images, labels = images[: args.eval_images], labels[: args.eval_images]
    config = CampaignConfig(
        fault_rates=paper_fault_rates(), trials=args.trials, seed=args.seed
    )
    # --workers threads into ftclipact's hardening step too: on a cold
    # cache Algorithm 1's fine-tuning campaigns dominate this command.
    model, sampler = prepare_campaign_variant(bundle, args.variant, args.workers)

    progress = _cell_progress_printer() if args.progress else None

    memory = WeightMemory.from_model(model)
    # Both modes build their cell task directly and run it through one
    # supervised executor, so --max-retries/--cell-timeout/--on-cell-error
    # (and REPRO_CHAOS) govern exact and adaptive sweeps alike.
    if args.variant == "int8":
        base = QuantizedCellTask(
            model, memory, images, labels, config,
            label=args.variant, batch_k=args.batch_k,
        )
    else:
        base = WeightFaultCellTask(
            model, memory, images, labels, config=config,
            sampler=sampler, label=args.variant, batch_k=args.batch_k,
        )
    adaptive = None
    if args.mode == "adaptive":
        from repro.core.batched import AdaptiveCampaignTask

        task = AdaptiveCampaignTask(
            base,
            ci_halfwidth=args.ci_halfwidth,
            batch_k=args.batch_k,
            label=args.variant,
        )
    else:
        task = base
    executor = CampaignExecutor(
        workers=args.workers,
        progress=progress,
        checkpoint=args.checkpoint,
        max_retries=args.max_retries,
        cell_timeout=args.cell_timeout,
        on_cell_error=args.on_cell_error,
    )
    result = executor.run_tasks([task])[0]
    if args.mode == "adaptive":
        adaptive = result
        curve = adaptive.curve
    else:
        curve = result
    print(
        format_curve_table(
            curve, title=f"{args.model} [{args.variant}]: accuracy vs fault rate"
        )
    )
    print(f"AUC = {curve.auc():.4f}")
    _report_quarantined(executor.quarantined)
    if adaptive is not None:
        print(
            f"adaptive: executed {adaptive.cells_executed}/"
            f"{adaptive.cells_total} cells "
            f"(skipped {adaptive.cells_skipped}); max CI half-width "
            f"{max(adaptive.halfwidths):.4f} "
            f"(tolerance {adaptive.tolerance:.4f})"
        )
    return 0


def _load_suite_arg(spec: str):
    """Resolve a path-or-bundled-name argument into a loaded suite.

    Shared by ``scenarios`` (local execution) and ``submit`` (daemon
    submission) so both accept the same spec surface.  Returns
    ``(suite, None)`` on success or ``(None, exit_code)`` with the error
    already printed.
    """
    from pathlib import Path

    from repro.scenarios import bundled_spec_path, load_scenarios

    source = Path(spec)
    if not source.exists() and source.suffix == "":
        try:
            source = bundled_spec_path(spec)
        except KeyError as error:
            print(f"error: {error.args[0]}", file=sys.stderr)
            return None, 2
    try:
        return load_scenarios(source), None
    except (FileNotFoundError, ValueError, ImportError) as error:
        print(f"error: {error}", file=sys.stderr)
        return None, 2


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis.reporting import format_scenario_table
    from repro.scenarios import bundled_spec_names, run_scenarios

    if args.list:
        for name in bundled_spec_names():
            print(name)
        return 0
    if args.spec is None:
        print(
            "error: provide a scenario file or bundled spec name "
            "(--list shows bundled specs)",
            file=sys.stderr,
        )
        return 2
    suite, code = _load_suite_arg(args.spec)
    if suite is None:
        return code
    code = _apply_chaos(args)
    if code is not None:
        return code

    progress = _cell_progress_printer(show_label=True) if args.progress else None

    if args.shard is not None:
        from repro.scenarios import ShardSpec, run_scenario_shard

        if args.out is None:
            print(
                "error: --shard needs --out RUN_DIR (the segmented run "
                "directory shared by every shard)",
                file=sys.stderr,
            )
            return 2
        if args.checkpoint is not None:
            print(
                "error: --shard keeps its checkpoint inside the run "
                "directory; drop --checkpoint",
                file=sys.stderr,
            )
            return 2
        try:
            shard = ShardSpec.parse(args.shard)
            shard_dir = run_scenario_shard(
                suite,
                shard,
                args.out,
                workers=args.workers,
                progress=progress,
                max_retries=args.max_retries,
                cell_timeout=args.cell_timeout,
                on_cell_error=args.on_cell_error,
                store=not args.no_store,
            )
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(f"shard {shard} of {suite.name!r} written to {shard_dir}")
        print(
            f"run the remaining shards, then: "
            f"python -m repro merge {args.out}"
        )
        return 0

    results = run_scenarios(
        suite,
        workers=args.workers,
        progress=progress,
        checkpoint=args.checkpoint,
        out_dir=args.out,
        max_retries=args.max_retries,
        cell_timeout=args.cell_timeout,
        on_cell_error=args.on_cell_error,
        store=not args.no_store,
    )
    print(
        format_scenario_table(
            results,
            title=f"{suite.name}: {len(results)} scenarios through one "
            "executor pool",
        )
    )
    _report_scenario_failures(results)
    if args.out:
        print(f"results written to {Path(args.out) / 'summary.json'}")
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis.reporting import format_scenario_table
    from repro.scenarios import merge_run

    try:
        results = merge_run(args.run_dir, store=not args.no_store)
    except (FileNotFoundError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(
        format_scenario_table(
            results,
            title=f"merged {len(results)} scenarios from {args.run_dir}",
        )
    )
    _report_scenario_failures(results)
    print(f"merged results written to {Path(args.run_dir) / 'summary.json'}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.results import write_report

    try:
        target = write_report(args.run_dir, out=args.out, bench_dir=args.bench)
    except (FileNotFoundError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(f"report written to {target}")
    return 0


def _cmd_layerwise(args: argparse.Namespace) -> int:
    from repro.analysis.layerwise import run_layerwise_analysis
    from repro.analysis.reporting import format_rate, format_table
    from repro.core.campaign import CampaignConfig
    from repro.experiments import clone_model, experiment_bundle, paper_fault_rates

    bundle = experiment_bundle(args.model)
    model = clone_model(bundle)
    images, labels = bundle.test_set.arrays()
    images, labels = images[: args.eval_images], labels[: args.eval_images]
    config = CampaignConfig(
        fault_rates=paper_fault_rates(), trials=args.trials, seed=3
    )
    result = run_layerwise_analysis(
        model, images, labels, config, layers=args.layers or None,
        workers=args.workers,
    )
    rows = []
    cliffs = result.cliff_rates(drop=0.1)
    for layer in result.ordered_layers():
        means = result.curves[layer].mean_accuracies()
        rows.append(
            [
                layer,
                result.bits_per_layer[layer],
                f"{means[0]:.3f}",
                f"{means[-1]:.3f}",
                format_rate(cliffs[layer]),
            ]
        )
    print(
        format_table(
            ["layer", "bits", "acc@low", "acc@high", "cliff"],
            rows,
            title=f"{args.model}: per-layer resilience",
        )
    )
    return 0


def _cmd_bitpos(args: argparse.Namespace) -> int:
    from repro.analysis.bitpos import run_bit_position_study
    from repro.analysis.reporting import format_table
    from repro.experiments import clone_model, experiment_bundle
    from repro.hw.bits import bit_field

    bundle = experiment_bundle(args.model)
    model = clone_model(bundle)
    images, labels = bundle.test_set.arrays()
    images, labels = images[: args.eval_images], labels[: args.eval_images]
    result = run_bit_position_study(
        model, images, labels, n_faults=args.faults, trials=args.trials, seed=5
    )
    rows = [
        [int(position), bit_field(int(position)), f"{mean:.4f}"]
        for position, mean in zip(result.bit_positions, result.mean_by_position())
    ]
    print(
        format_table(
            ["bit", "field", "mean accuracy"],
            rows,
            title=(
                f"{args.model}: accuracy after flipping bit b of {args.faults} "
                f"weights (clean {result.clean_accuracy:.4f})"
            ),
        )
    )
    return 0


def _cmd_outcomes(args: argparse.Namespace) -> int:
    from repro.analysis.outcomes import run_outcome_analysis
    from repro.analysis.reporting import format_rate, format_table
    from repro.core.campaign import CampaignConfig
    from repro.experiments import clone_model, experiment_bundle, paper_fault_rates
    from repro.hw.memory import WeightMemory

    bundle = experiment_bundle(args.model)
    model = clone_model(bundle)
    images, labels = bundle.test_set.arrays()
    images, labels = images[: args.eval_images], labels[: args.eval_images]
    config = CampaignConfig(
        fault_rates=paper_fault_rates(), trials=args.trials, seed=args.seed
    )
    breakdown = run_outcome_analysis(
        model, WeightMemory.from_model(model), images, labels, config
    )
    rows = [
        [
            format_rate(row[0]),
            f"{row[1]:.3f}",
            f"{row[2]:.3f}",
            f"{row[3]:.3f}",
            f"{row[4]:.3f}",
        ]
        for row in breakdown.summary_rows()
    ]
    print(
        format_table(
            ["fault_rate", "masked", "benign", "SDC", "DUE"],
            rows,
            title=f"{args.model}: fault-outcome taxonomy",
        )
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.service import CampaignService, serve

    code = _apply_chaos(args)
    if code is not None:
        return code
    context = None
    if args.smoke:
        from repro.scenarios import smoke_context

        context = smoke_context()
    service = CampaignService(
        args.root,
        context=context,
        workers=args.workers,
        slots=args.slots,
        queue_limit=args.queue_limit,
        max_retries=args.max_retries,
        cell_timeout=args.cell_timeout,
        on_cell_error=args.on_cell_error,
    )
    server = serve(service, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    # Parsed by clients and the smoke harness; keep the format stable.
    print(f"serving on http://{host}:{port}", flush=True)
    stop = threading.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, lambda *_: stop.set())
    pump = threading.Thread(target=server.serve_forever, daemon=True)
    pump.start()
    stop.wait()
    print("shutting down", flush=True)
    server.shutdown()
    pump.join()
    server.server_close()
    service.close()
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient, ServiceClientError

    suite, code = _load_suite_arg(args.spec)
    if suite is None:
        return code
    payload = {
        "name": suite.name,
        "scenarios": [spec.to_dict() for spec in suite.specs],
    }
    client = ServiceClient(args.url)
    try:
        response = client.submit(payload)
        print(json.dumps(response, indent=1, sort_keys=True))
        if not args.wait:
            return 0
        status = client.wait(response["id"], timeout=args.timeout)
        print(json.dumps(status, indent=1, sort_keys=True))
        return 0 if status["state"] == "complete" else 1
    except (ServiceClientError, OSError, TimeoutError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient, ServiceClientError

    client = ServiceClient(args.url)
    try:
        payload = client.stats() if args.id is None else client.status(args.id)
    except (ServiceClientError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(json.dumps(payload, indent=1, sort_keys=True))
    return 0


def _cmd_fetch(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient, ServiceClientError

    client = ServiceClient(args.url)
    try:
        written = client.fetch(args.id, args.out or args.id)
    except (ServiceClientError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    for path in written:
        print(path)
    return 0


_COMMANDS = {
    "train": _cmd_train,
    "profile": _cmd_profile,
    "harden": _cmd_harden,
    "campaign": _cmd_campaign,
    "scenarios": _cmd_scenarios,
    "merge": _cmd_merge,
    "report": _cmd_report,
    "layerwise": _cmd_layerwise,
    "bitpos": _cmd_bitpos,
    "outcomes": _cmd_outcomes,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "status": _cmd_status,
    "fetch": _cmd_fetch,
}


def main(argv: "Sequence[str] | None" = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
