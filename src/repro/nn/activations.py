"""Elementwise activation layers.

The unbounded :class:`ReLU` is the activation the paper's fault analysis
targets; :class:`ReLU6` is the fixed-threshold clipping baseline.  The
paper's own *clipped* activation (map values above a tunable per-layer
threshold to zero) lives in :mod:`repro.core.clipped` because it is part of
the contribution, not the substrate.
"""

from __future__ import annotations

import numpy as np

from repro.nn.functional import softmax
from repro.nn.module import Module

__all__ = [
    "Activation",
    "ReLU",
    "LeakyReLU",
    "ReLU6",
    "Sigmoid",
    "Tanh",
    "Softmax",
    "Identity",
]


class Activation(Module):
    """Marker base class: layers that transform activations elementwise.

    The activation-swap machinery (:mod:`repro.core.swap`) replaces
    instances of this class with clipped variants, so any activation added
    to a model should derive from it.
    """


class ReLU(Activation):
    """``max(0, x)`` — the unbounded activation the paper hardens."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: "np.ndarray | None" = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        if self.training:
            self._mask = x > 0
        return np.maximum(x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward in training mode")
        return np.asarray(grad_output, dtype=np.float32) * self._mask


class LeakyReLU(Activation):
    """``x if x > 0 else slope * x``."""

    def __init__(self, negative_slope: float = 0.01):
        super().__init__()
        self.negative_slope = float(negative_slope)
        self._mask: "np.ndarray | None" = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        if self.training:
            self._mask = x > 0
        return np.where(x > 0, x, self.negative_slope * x).astype(np.float32)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward in training mode")
        grad = np.asarray(grad_output, dtype=np.float32)
        return np.where(self._mask, grad, self.negative_slope * grad).astype(np.float32)

    def extra_repr(self) -> str:
        return f"negative_slope={self.negative_slope}"


class ReLU6(Activation):
    """``min(max(0, x), 6)`` — a fixed clamp, used as a mitigation baseline."""

    def __init__(self, cap: float = 6.0):
        super().__init__()
        if cap <= 0:
            raise ValueError(f"cap must be positive, got {cap}")
        self.cap = float(cap)
        self._mask: "np.ndarray | None" = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        if self.training:
            self._mask = (x > 0) & (x < self.cap)
        return np.clip(x, 0.0, self.cap)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward in training mode")
        return np.asarray(grad_output, dtype=np.float32) * self._mask

    def extra_repr(self) -> str:
        return f"cap={self.cap}"


class Sigmoid(Activation):
    """Logistic activation."""

    def __init__(self) -> None:
        super().__init__()
        self._output: "np.ndarray | None" = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        # Split by sign for numerical stability against exp overflow.
        out = np.empty_like(x)
        positive = x >= 0
        out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
        exp_x = np.exp(x[~positive])
        out[~positive] = exp_x / (1.0 + exp_x)
        if self.training:
            self._output = out
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward in training mode")
        sig = self._output
        return np.asarray(grad_output, dtype=np.float32) * sig * (1.0 - sig)


class Tanh(Activation):
    """Hyperbolic tangent activation."""

    def __init__(self) -> None:
        super().__init__()
        self._output: "np.ndarray | None" = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = np.tanh(np.asarray(x, dtype=np.float32))
        if self.training:
            self._output = out
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward in training mode")
        return np.asarray(grad_output, dtype=np.float32) * (1.0 - self._output**2)


class Softmax(Activation):
    """Softmax over the last axis (inference-time probabilities).

    Training uses :class:`repro.nn.losses.CrossEntropyLoss` directly on
    logits instead, so this layer's backward is intentionally unimplemented.
    """

    def forward(self, x: np.ndarray) -> np.ndarray:
        return softmax(np.asarray(x, dtype=np.float32), axis=-1)


class Identity(Activation):
    """Pass-through; useful as a placeholder when removing an activation."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(x, dtype=np.float32)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return np.asarray(grad_output, dtype=np.float32)
