"""Bit-position sensitivity study (our extension of paper Section III).

The paper attributes the damage to "bit-flips from 0 to 1 at MSB
locations" of weights.  This analysis makes that quantitative: flip a
fixed number of weights at each of the 32 bit positions and measure the
accuracy, showing that exponent MSBs dominate while mantissa bits are
nearly harmless.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro import nn
from repro.core.metrics import evaluate_accuracy_arrays
from repro.hw.bits import WORD_BITS, bit_field
from repro.hw.faultmodels import TargetedBitFlip
from repro.hw.injector import FaultInjector
from repro.hw.memory import WeightMemory
from repro.utils.rng import SeedTree
from repro.utils.validation import check_positive

__all__ = ["BitPositionResult", "run_bit_position_study"]


@dataclass
class BitPositionResult:
    """Accuracy per flipped bit position."""

    bit_positions: np.ndarray  # (32,) int
    accuracies: np.ndarray  # (32, trials)
    clean_accuracy: float
    n_faults: int

    def mean_by_position(self) -> np.ndarray:
        """Mean accuracy per bit position."""
        return self.accuracies.mean(axis=1)

    def mean_by_field(self) -> dict[str, float]:
        """Mean accuracy aggregated by IEEE-754 field."""
        means = self.mean_by_position()
        fields: dict[str, list[float]] = {"sign": [], "exponent": [], "mantissa": []}
        for position, mean in zip(self.bit_positions, means):
            fields[bit_field(int(position))].append(float(mean))
        return {name: float(np.mean(values)) for name, values in fields.items()}

    def most_damaging_positions(self, k: int = 5) -> list[int]:
        """The ``k`` bit positions with the lowest mean accuracy."""
        order = np.argsort(self.mean_by_position())
        return [int(self.bit_positions[i]) for i in order[:k]]


def run_bit_position_study(
    model: nn.Module,
    images: np.ndarray,
    labels: np.ndarray,
    n_faults: int = 10,
    trials: int = 5,
    seed: int = 0,
    positions: "Sequence[int] | None" = None,
    batch_size: int = 128,
) -> BitPositionResult:
    """Flip ``n_faults`` random weights at each bit position, measure accuracy."""
    check_positive("n_faults", n_faults)
    check_positive("trials", trials)
    bit_positions = (
        np.asarray(list(positions), dtype=np.int64)
        if positions is not None
        else np.arange(WORD_BITS, dtype=np.int64)
    )
    if bit_positions.size == 0:
        raise ValueError("positions must be non-empty")
    if bit_positions.min() < 0 or bit_positions.max() >= WORD_BITS:
        raise ValueError(f"positions must lie in [0, {WORD_BITS})")

    model.eval()
    memory = WeightMemory.from_model(model)
    injector = FaultInjector(memory)
    tree = SeedTree(seed)
    clean = evaluate_accuracy_arrays(model, images, labels, batch_size)

    accuracies = np.empty((bit_positions.size, trials), dtype=np.float64)
    for row, position in enumerate(bit_positions):
        fault_model = TargetedBitFlip(int(position), n_faults)
        for trial in range(trials):
            # The same trial index draws the same *word* targets at every
            # bit position (common random numbers across positions).
            rng = tree.generator(f"trial/{trial}")
            with injector.session(fault_model, rng):
                accuracies[row, trial] = evaluate_accuracy_arrays(
                    model, images, labels, batch_size
                )
    return BitPositionResult(
        bit_positions=bit_positions,
        accuracies=accuracies,
        clean_accuracy=clean,
        n_faults=int(n_faults),
    )
