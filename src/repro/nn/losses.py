"""Loss functions.

Each loss returns ``(value, grad_wrt_logits)`` so the training loop can
seed the model's backward pass without an autograd engine.
"""

from __future__ import annotations

import numpy as np

from repro.nn.functional import log_softmax, one_hot, softmax

__all__ = ["CrossEntropyLoss", "MSELoss"]


class CrossEntropyLoss:
    """Softmax cross-entropy on raw logits with optional label smoothing."""

    def __init__(self, label_smoothing: float = 0.0):
        if not 0.0 <= label_smoothing < 1.0:
            raise ValueError(
                f"label_smoothing must lie in [0, 1), got {label_smoothing}"
            )
        self.label_smoothing = float(label_smoothing)

    def __call__(
        self, logits: np.ndarray, labels: np.ndarray
    ) -> tuple[float, np.ndarray]:
        logits = np.asarray(logits, dtype=np.float32)
        labels = np.asarray(labels)
        if logits.ndim != 2:
            raise ValueError(f"logits must be (N, C), got shape {logits.shape}")
        if labels.shape != (logits.shape[0],):
            raise ValueError(
                f"labels must be (N,) = ({logits.shape[0]},), got {labels.shape}"
            )
        n, num_classes = logits.shape
        targets = one_hot(labels, num_classes)
        if self.label_smoothing > 0.0:
            smooth = self.label_smoothing
            targets = targets * (1.0 - smooth) + smooth / num_classes

        log_probs = log_softmax(logits, axis=1)
        loss = float(-(targets * log_probs).sum() / n)
        grad = (softmax(logits, axis=1) - targets) / n
        return loss, grad.astype(np.float32)


class MSELoss:
    """Mean squared error over all elements."""

    def __call__(
        self, predictions: np.ndarray, targets: np.ndarray
    ) -> tuple[float, np.ndarray]:
        predictions = np.asarray(predictions, dtype=np.float32)
        targets = np.asarray(targets, dtype=np.float32)
        if predictions.shape != targets.shape:
            raise ValueError(
                f"shape mismatch: predictions {predictions.shape} vs "
                f"targets {targets.shape}"
            )
        diff = predictions - targets
        loss = float(np.mean(diff**2))
        grad = (2.0 / diff.size) * diff
        return loss, grad.astype(np.float32)
