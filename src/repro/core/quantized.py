"""Fault-injection campaigns over int8 quantized weight memories.

Mirrors :mod:`repro.core.campaign` for the int8 storage model: the model
is *deployed* on dequantized-int8 weights (so the clean accuracy honestly
includes quantization error) and faults flip bits of the int8 codes.
Used by the quantization ablation benchmark to show how much of the
paper's float32 fragility disappears with bounded-error storage.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.core.campaign import CampaignConfig
from repro.core.metrics import ResilienceCurve, evaluate_accuracy_arrays
from repro.hw.memory import WeightMemory
from repro.hw.quant import QuantizedWeightMemory
from repro.utils.rng import SeedTree

__all__ = ["run_quantized_campaign"]


def run_quantized_campaign(
    model: nn.Module,
    memory: WeightMemory,
    images: np.ndarray,
    labels: np.ndarray,
    config: "CampaignConfig | None" = None,
    label: str = "int8",
) -> ResilienceCurve:
    """Rate sweep x trials with faults in the int8 code space.

    Seeds follow the same ``rate/<i>/trial/<j>`` derivation as the float
    campaign, so int8 and float32 runs with the same config share common
    random numbers (the *positions* differ — the bit spaces have different
    sizes — but the statistical pairing still reduces variance).
    """
    config = config if config is not None else CampaignConfig()
    quantized = QuantizedWeightMemory(memory)
    tree = SeedTree(config.seed)
    rates = np.asarray(config.fault_rates, dtype=np.float64)
    accuracies = np.empty((rates.size, config.trials), dtype=np.float64)

    with quantized.deployed():
        clean_accuracy = evaluate_accuracy_arrays(
            model, images, labels, config.batch_size
        )
        for rate_index, rate in enumerate(rates):
            for trial in range(config.trials):
                rng = tree.generator(f"rate/{rate_index}/trial/{trial}")
                with quantized.session(float(rate), rng):
                    accuracies[rate_index, trial] = evaluate_accuracy_arrays(
                        model, images, labels, config.batch_size
                    )
    return ResilienceCurve(
        fault_rates=rates,
        accuracies=accuracies,
        clean_accuracy=clean_accuracy,
        label=label,
    )
