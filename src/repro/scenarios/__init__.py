"""Declarative campaign scenarios: spec in, executor sweep out.

``repro.scenarios`` turns the execution substrate built by the
executor/suffix/tensor-plane layers into a *scenario engine*: a
:class:`CampaignSpec` (loadable from YAML/JSON, matrix-expandable via
``grid:`` blocks) names a model, a dataset slice, a fault model with
parameters, a mitigation variant and a sweep grid; the compiler lowers
every expanded spec onto the existing campaign cell tasks and runs the
whole matrix through **one** shared
:class:`~repro.core.executor.CampaignExecutor` pool with one resumable
checkpoint file — bit-identical to the equivalent direct API calls at
any worker count.

Authoritative schema reference: ``docs/SCENARIOS.md``.  CLI entry
point: ``python -m repro scenarios <spec.yaml or bundled name>``.
"""

from repro.scenarios.bundled import (
    SPEC_DIR,
    bundled_spec_names,
    bundled_spec_path,
    load_bundled,
)
from repro.scenarios.compile import (
    ScenarioContext,
    ScenarioResult,
    compile_spec,
    run_scenarios,
    smoke_context,
    write_results,
)
from repro.scenarios.faults import (
    FAULT_MODELS,
    NAMED_BIT_POSITIONS,
    FaultModelInfo,
    SpecFaultSampler,
    build_fault_model,
    resolve_bit_position,
    validate_fault_params,
)
from repro.scenarios.spec import (
    CAMPAIGN_KINDS,
    EXECUTION_MODES,
    MITIGATION_VARIANTS,
    REDUNDANCY_VARIANTS,
    CampaignSpec,
    FaultModelSpec,
    ScenarioSuite,
    expand_entry,
    load_scenarios,
    parse_suite,
)

__all__ = [
    "CAMPAIGN_KINDS",
    "EXECUTION_MODES",
    "MITIGATION_VARIANTS",
    "REDUNDANCY_VARIANTS",
    "FAULT_MODELS",
    "NAMED_BIT_POSITIONS",
    "SPEC_DIR",
    "CampaignSpec",
    "FaultModelInfo",
    "FaultModelSpec",
    "ScenarioContext",
    "ScenarioResult",
    "ScenarioSuite",
    "SpecFaultSampler",
    "build_fault_model",
    "bundled_spec_names",
    "bundled_spec_path",
    "compile_spec",
    "expand_entry",
    "load_bundled",
    "load_scenarios",
    "parse_suite",
    "resolve_bit_position",
    "run_scenarios",
    "smoke_context",
    "validate_fault_params",
    "write_results",
]
