#!/usr/bin/env python
"""Which bit of a float32 weight actually matters?

The paper attributes DNN fragility to "bit-flips from 0 to 1 at MSB
locations" of weights (Section III).  This study makes that quantitative:
it flips a fixed number of weights at *each* bit position, measures the
accuracy, and aggregates by IEEE-754 field (sign / exponent / mantissa).

Run:  python examples/bit_position_study.py [--model lenet5]
"""

import argparse

from repro.analysis.bitpos import run_bit_position_study
from repro.analysis.reporting import format_table
from repro.experiments import clone_model, experiment_bundle
from repro.hw.bits import bit_field


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--model", default="lenet5", choices=["lenet5", "alexnet", "vgg16"]
    )
    parser.add_argument("--faults", type=int, default=20, help="flips per experiment")
    parser.add_argument("--trials", type=int, default=5)
    parser.add_argument("--eval-images", type=int, default=160)
    args = parser.parse_args()

    bundle = experiment_bundle(args.model)
    model = clone_model(bundle)
    images, labels = bundle.test_set.arrays()
    images, labels = images[: args.eval_images], labels[: args.eval_images]

    print(
        f"model: {args.model}  clean accuracy: {bundle.clean_accuracy:.3f}\n"
        f"flipping bit b of {args.faults} random weights, {args.trials} trials "
        f"per position...\n"
    )
    result = run_bit_position_study(
        model, images, labels, n_faults=args.faults, trials=args.trials, seed=5
    )

    rows = []
    means = result.mean_by_position()
    for position, mean in zip(result.bit_positions, means):
        drop = result.clean_accuracy - float(mean)
        bar = "#" * int(round(40 * max(drop, 0.0) / max(result.clean_accuracy, 1e-9)))
        rows.append([int(position), bit_field(int(position)), f"{mean:.3f}", bar])
    print(
        format_table(
            ["bit", "field", "mean_acc", "accuracy drop"],
            rows,
            title=f"accuracy after flipping bit b of {args.faults} weights "
            f"(clean = {result.clean_accuracy:.3f})",
        )
    )

    print("\naggregated by IEEE-754 field:")
    fields = result.mean_by_field()
    for name in ("mantissa", "sign", "exponent"):
        print(f"  {name:9s} mean accuracy {fields[name]:.3f}")
    worst = result.most_damaging_positions(3)
    print(
        f"\nmost damaging bit positions: {worst} — the exponent MSBs, as the "
        f"paper's analysis predicts. This is exactly why clipping activations "
        f"(which bound the *consequence* of an exponent flip) works."
    )


if __name__ == "__main__":
    main()
