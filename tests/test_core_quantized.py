"""Tests for the int8 campaign on the unified executor substrate.

`run_quantized_campaign` shares :class:`~repro.core.executor.CampaignExecutor`
with the float32 campaigns, so it inherits the bit-identical-parallelism
contract, progress streaming and checkpoint resume — all guarded here.
"""

import json

import numpy as np
import pytest

from repro.core.campaign import CampaignConfig, run_campaign
from repro.core.executor import CellResult
from repro.core.quantized import QuantizedCellTask, run_quantized_campaign
from repro.hw.memory import WeightMemory

RATES = (1e-4, 1e-3)


@pytest.fixture
def quant_parts(trained_mlp, mlp_eval_arrays):
    images, labels = mlp_eval_arrays
    memory = WeightMemory.from_model(trained_mlp)
    config = CampaignConfig(fault_rates=RATES, trials=4, seed=21, batch_size=96)
    return trained_mlp, memory, images, labels, config


class TestQuantizedParallelDeterminism:
    def test_two_workers_bit_identical_to_serial(self, quant_parts):
        """The ISSUE's acceptance criterion for the int8 path."""
        model, memory, images, labels, config = quant_parts
        serial = run_quantized_campaign(model, memory, images, labels, config)
        parallel = run_quantized_campaign(
            model, memory, images, labels, config, workers=2
        )
        np.testing.assert_array_equal(serial.accuracies, parallel.accuracies)
        assert serial.clean_accuracy == parallel.clean_accuracy
        np.testing.assert_array_equal(serial.fault_rates, parallel.fault_rates)

    def test_weights_restored_after_parallel_run(self, quant_parts):
        """Deployment happens in workers (and briefly for the clean
        accuracy); the parent's float weights must come back exactly."""
        model, memory, images, labels, config = quant_parts
        before = memory.snapshot()
        run_quantized_campaign(model, memory, images, labels, config, workers=2)
        for old, new in zip(before, memory.snapshot()):
            np.testing.assert_array_equal(old, new)

    def test_matches_pre_executor_serial_loop(self, quant_parts):
        """The historical hand-rolled loop, inlined: same seeds, same
        deployment, cell by cell — the port must not change a bit."""
        from repro.core.metrics import evaluate_accuracy_arrays
        from repro.hw.quant import QuantizedWeightMemory
        from repro.utils.rng import SeedTree

        model, memory, images, labels, config = quant_parts
        quantized = QuantizedWeightMemory(memory)
        tree = SeedTree(config.seed)
        rates = np.asarray(config.fault_rates, dtype=np.float64)
        expected = np.empty((rates.size, config.trials))
        with quantized.deployed():
            clean = evaluate_accuracy_arrays(
                model, images, labels, config.batch_size
            )
            for rate_index, rate in enumerate(rates):
                for trial in range(config.trials):
                    rng = tree.generator(f"rate/{rate_index}/trial/{trial}")
                    with quantized.session(float(rate), rng):
                        expected[rate_index, trial] = evaluate_accuracy_arrays(
                            model, images, labels, config.batch_size
                        )
        curve = run_quantized_campaign(model, memory, images, labels, config)
        np.testing.assert_array_equal(curve.accuracies, expected)
        assert curve.clean_accuracy == clean


class TestQuantizedProgressAndCheckpoint:
    def test_progress_covers_grid(self, quant_parts):
        model, memory, images, labels, config = quant_parts
        seen: list[CellResult] = []
        curve = run_quantized_campaign(
            model, memory, images, labels, config, progress=seen.append
        )
        total = len(RATES) * config.trials
        assert len(seen) == total
        assert sorted((c.rate_index, c.trial) for c in seen) == [
            (i, j) for i in range(len(RATES)) for j in range(config.trials)
        ]
        for cell in seen:
            assert curve.accuracies[cell.rate_index, cell.trial] == cell.accuracy

    def test_resume_after_mid_grid_kill(self, quant_parts, tmp_path):
        """A sweep killed mid-grid resumes from its checkpoint, recomputes
        only the missing cells, and still restores the float weights."""
        model, memory, images, labels, config = quant_parts
        full = run_quantized_campaign(model, memory, images, labels, config)
        path = tmp_path / "int8.json"
        before = memory.snapshot()

        class _Kill(RuntimeError):
            pass

        def killer(cell):
            if cell.completed == 3:
                raise _Kill("simulated crash")

        with pytest.raises(_Kill):
            run_quantized_campaign(
                model, memory, images, labels, config,
                progress=killer, checkpoint=str(path),
            )
        # The kill happened inside the cell loop; the runner's close()
        # must still have restored the parent's float weights.
        for old, new in zip(before, memory.snapshot()):
            np.testing.assert_array_equal(old, new)
        # The cell is recorded before the progress callback fires, so a
        # crashing callback never loses the work it was notified about.
        saved = len(json.loads(path.read_text())["cells"])
        assert saved == 3

        recomputed = []
        resumed = run_quantized_campaign(
            model, memory, images, labels, config, checkpoint=str(path),
            progress=lambda cell: recomputed.append(cell)
            if not cell.from_checkpoint else None,
        )
        assert len(recomputed) == len(RATES) * config.trials - saved
        np.testing.assert_array_equal(full.accuracies, resumed.accuracies)

    def test_checkpoint_rejects_weight_fault_campaign(self, quant_parts, tmp_path):
        """Campaign *type* is part of the fingerprint: an int8 checkpoint
        must never resume a float32 weight-fault sweep, even with an
        identical config grid."""
        model, memory, images, labels, config = quant_parts
        path = tmp_path / "sweep.json"
        run_quantized_campaign(
            model, memory, images, labels, config, checkpoint=str(path)
        )
        with pytest.raises(ValueError, match="different campaign"):
            run_campaign(model, memory, images, labels, config, checkpoint=str(path))

    def test_checkpoint_rejects_quantized_resume_of_weight_fault(
        self, quant_parts, tmp_path
    ):
        model, memory, images, labels, config = quant_parts
        path = tmp_path / "sweep.json"
        run_campaign(model, memory, images, labels, config, checkpoint=str(path))
        with pytest.raises(ValueError, match="different campaign"):
            run_quantized_campaign(
                model, memory, images, labels, config, checkpoint=str(path)
            )

    def test_parallel_resume_of_serial_checkpoint(self, quant_parts, tmp_path):
        model, memory, images, labels, config = quant_parts
        serial = run_quantized_campaign(model, memory, images, labels, config)
        path = tmp_path / "int8.json"
        run_quantized_campaign(
            model, memory, images, labels, config, checkpoint=str(path)
        )
        payload = json.loads(path.read_text())
        payload["cells"] = {"0/0": payload["cells"]["0/0"]}
        path.write_text(json.dumps(payload))
        resumed = run_quantized_campaign(
            model, memory, images, labels, config, workers=2, checkpoint=str(path)
        )
        np.testing.assert_array_equal(serial.accuracies, resumed.accuracies)


class TestQuantizedCellTask:
    def test_task_is_picklable_and_label_free(self, quant_parts):
        import pickle

        model, memory, images, labels, config = quant_parts
        task = QuantizedCellTask(
            model, memory, images, labels, config, label="int8"
        )
        clone = pickle.loads(pickle.dumps(task))
        assert clone.kind == "quantized"
        assert clone.label == ""  # labels stay parent-side
        runner = clone.make_runner()
        try:
            value = runner.run_cell(0, 0)
        finally:
            runner.close()
        assert 0.0 <= value <= 1.0
