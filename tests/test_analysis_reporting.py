"""Tests for text reporting helpers and the HTML/SVG figure builders."""

import numpy as np
import pytest

from repro.analysis.reporting import (
    CATEGORICAL_COLORS,
    RawHTML,
    format_box_table,
    format_comparison_table,
    format_curve_table,
    format_histogram,
    format_rate,
    format_scenario_table,
    format_table,
    html_table,
    svg_resilience_figure,
)
from repro.core.metrics import ResilienceCurve


def _curve(label=""):
    rates = np.asarray([1e-7, 1e-6])
    accs = np.asarray([[0.9, 0.8], [0.5, 0.4]])
    return ResilienceCurve(rates, accs, clean_accuracy=0.95, label=label)


class TestFormatRate:
    def test_zero(self):
        assert format_rate(0.0) == "0"

    def test_scientific(self):
        assert format_rate(5e-7) == "5.0e-07"


class TestFormatTable:
    def test_alignment_and_content(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, 0.125]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "2.5000" in text and "30" in text

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_small_floats_scientific(self):
        text = format_table(["x"], [[1e-7]])
        assert "1.000e-07" in text


class TestCurveTables:
    def test_curve_table_has_clean_row(self):
        text = format_curve_table(_curve("demo"))
        assert text.splitlines()[0] == "curve: demo"
        assert "0.9500" in text  # clean accuracy row
        assert "1.0e-07" in text

    def test_comparison_table(self):
        text = format_comparison_table(
            [_curve(), _curve()], labels=["unprotected", "clipped"]
        )
        assert "unprotected" in text and "clipped" in text
        assert "AUC" in text

    def test_comparison_rejects_mismatched_grids(self):
        other = ResilienceCurve(
            np.asarray([1e-5, 1e-4]), np.asarray([[0.5], [0.4]]), 0.9
        )
        with pytest.raises(ValueError):
            format_comparison_table([_curve(), other])

    def test_comparison_rejects_empty(self):
        with pytest.raises(ValueError):
            format_comparison_table([])

    def test_box_table(self):
        text = format_box_table(_curve(), title="boxes")
        assert "median" in text
        assert "boxes" in text


class TestHistogram:
    def test_bars_scale(self):
        counts = np.asarray([1, 10])
        edges = np.asarray([0.0, 1.0, 2.0])
        text = format_histogram(counts, edges, width=10)
        lines = text.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 1

    def test_mismatched_edges_rejected(self):
        with pytest.raises(ValueError):
            format_histogram(np.asarray([1, 2]), np.asarray([0.0, 1.0]))

    def test_empty_counts_safe(self):
        text = format_histogram(np.asarray([0, 0]), np.asarray([0.0, 1.0, 2.0]))
        assert "#" not in text


def _scenario_result(name="s", accs=None):
    from repro.scenarios import CampaignSpec, assemble_scenario_result

    spec = CampaignSpec(
        name=name, model="lenet5", rates=(1e-6, 1e-5), trials=2,
        eval_images=16, batch_size=16, seed=3,
    )
    grid = np.asarray(
        accs if accs is not None else [[0.9, 0.8], [0.5, 0.4]]
    )
    return assemble_scenario_result(spec, spec.rates, grid, 0.95)


class TestScenarioTable:
    def test_empty_results_render_headers_only(self):
        text = format_scenario_table([], title="empty run")
        lines = text.splitlines()
        assert lines[0] == "empty run"
        assert "scenario" in lines[1]
        assert len(lines) == 3  # title + header + rule, zero data rows

    def test_all_quarantined_family_renders_nan_row(self):
        # Every cell of the scenario failed: the grid is all-NaN and the
        # table must still render (NaN cells, not an exception).
        result = _scenario_result(
            "doomed", accs=[[np.nan, np.nan], [np.nan, np.nan]]
        )
        text = format_scenario_table([result])
        assert "doomed" in text
        assert "nan" in text

    def test_colliding_name_stems_stay_distinct_rows(self):
        # Names that sanitize to the same file stem are still distinct
        # scenarios; the table keys rows by name, never by stem.
        a = _scenario_result("collide/x=1")
        b = _scenario_result("collide-x-1")
        from repro.scenarios import scenario_file_stems

        stems = scenario_file_stems([a.name, b.name])
        assert len(set(stems)) == 2
        text = format_scenario_table([a, b])
        assert "collide/x=1" in text
        assert "collide-x-1" in text


class TestHtmlTable:
    def test_escapes_cells_and_marks_numeric(self):
        html = html_table(["col"], [["<b>&"], [0.5], [3]])
        assert "&lt;b&gt;&amp;" in html
        assert html.count('class="num"') == 2

    def test_raw_cells_pass_through(self):
        html = html_table(["col"], [[RawHTML("<a href='#x'>x</a>")]])
        assert "<a href='#x'>x</a>" in html

    def test_nan_renders_as_dash(self):
        assert "—" in html_table(["col"], [[float("nan")]])

    def test_caption_and_width_mismatch(self):
        assert "<caption>c</caption>" in html_table(["a"], [], caption="c")
        with pytest.raises(ValueError):
            html_table(["a"], [[1, 2]])


class TestSvgFigure:
    def _series(self, **kw):
        base = dict(
            label="s", rates=[1e-6, 1e-5], mean=[0.9, 0.5],
            color=CATEGORICAL_COLORS[0],
        )
        base.update(kw)
        return base

    def test_deterministic_bytes(self):
        args = ([self._series()],)
        assert svg_resilience_figure(*args) == svg_resilience_figure(*args)

    def test_band_and_clean_line(self):
        svg = svg_resilience_figure(
            [self._series(low=[0.8, 0.4], high=[1.0, 0.6])],
            clean_accuracy=0.95,
            title="t",
        )
        assert "<polygon" in svg
        assert 'class="clean-line"' in svg
        assert "clean 0.9500" in svg
        assert "t</text>" in svg

    def test_marker_tooltips_name_the_series(self):
        svg = svg_resilience_figure([self._series(label="a<b")])
        assert "<title>a&lt;b: rate 1.0e-06" in svg

    def test_rejects_empty_and_nonpositive_rates(self):
        with pytest.raises(ValueError, match="at least one series"):
            svg_resilience_figure([])
        with pytest.raises(ValueError, match="positive"):
            svg_resilience_figure([self._series(rates=[0.0, 1e-5])])

    def test_single_rate_point_renders(self):
        svg = svg_resilience_figure(
            [self._series(rates=[1e-6], mean=[0.9])]
        )
        assert "<circle" in svg

    def test_palette_has_eight_fixed_slots(self):
        assert len(CATEGORICAL_COLORS) == 8
        assert len(set(CATEGORICAL_COLORS)) == 8
