"""Tests for Dropout, Flatten, Sequential and losses."""

import numpy as np
import pytest

from repro import nn


class TestDropout:
    def test_eval_is_identity(self):
        drop = nn.Dropout(0.5, seed=0)
        drop.eval()
        x = np.random.default_rng(0).standard_normal(100).astype(np.float32)
        np.testing.assert_array_equal(drop(x), x)

    def test_training_zeroes_roughly_p(self):
        drop = nn.Dropout(0.5, seed=0)
        drop.train()
        x = np.ones(10_000, dtype=np.float32)
        out = drop(x)
        zero_fraction = float((out == 0).mean())
        assert 0.45 < zero_fraction < 0.55

    def test_inverted_scaling_preserves_mean(self):
        drop = nn.Dropout(0.3, seed=1)
        drop.train()
        x = np.ones(100_000, dtype=np.float32)
        assert drop(x).mean() == pytest.approx(1.0, abs=0.02)

    def test_p_zero_identity_even_training(self):
        drop = nn.Dropout(0.0)
        drop.train()
        x = np.ones(10, dtype=np.float32)
        np.testing.assert_array_equal(drop(x), x)

    def test_backward_uses_same_mask(self):
        drop = nn.Dropout(0.5, seed=2)
        drop.train()
        x = np.ones(1000, dtype=np.float32)
        out = drop(x)
        grad = drop.backward(np.ones(1000, dtype=np.float32))
        np.testing.assert_array_equal(grad, out)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)
        with pytest.raises(ValueError):
            nn.Dropout(-0.1)


class TestFlatten:
    def test_forward_shape(self):
        flat = nn.Flatten()
        x = np.zeros((2, 3, 4, 5), dtype=np.float32)
        assert flat(x).shape == (2, 60)

    def test_backward_restores_shape(self):
        flat = nn.Flatten()
        flat.train()
        x = np.random.default_rng(0).standard_normal((2, 3, 4)).astype(np.float32)
        out = flat(x)
        grad = flat.backward(out)
        np.testing.assert_array_equal(grad, x)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            nn.Flatten()(np.zeros(3, dtype=np.float32))


class TestSequential:
    def _model(self):
        return nn.Sequential(nn.Linear(4, 8, seed=0), nn.ReLU(), nn.Linear(8, 2, seed=1))

    def test_forward_chains(self):
        model = self._model()
        x = np.random.default_rng(0).standard_normal((3, 4)).astype(np.float32)
        manual = model[2](model[1](model[0](x)))
        np.testing.assert_array_equal(model(x), manual)

    def test_len_iter_getitem(self):
        model = self._model()
        assert len(model) == 3
        assert isinstance(model[1], nn.ReLU)
        assert isinstance(model[-1], nn.Linear)
        assert len(list(model)) == 3

    def test_index_out_of_range(self):
        with pytest.raises(IndexError):
            self._model()[3]

    def test_replace_swaps_layer(self):
        model = self._model()
        old = model.replace(1, nn.Tanh())
        assert isinstance(old, nn.ReLU)
        assert isinstance(model[1], nn.Tanh)

    def test_replace_propagates_training_mode(self):
        model = self._model()
        model.eval()
        model.replace(1, nn.Tanh())
        assert not model[1].training

    def test_append(self):
        model = self._model()
        model.append(nn.Softmax())
        assert len(model) == 4

    def test_index_of(self):
        model = self._model()
        assert model.index_of(model[1]) == 1
        with pytest.raises(ValueError):
            model.index_of(nn.ReLU())

    def test_non_module_rejected(self):
        with pytest.raises(TypeError):
            nn.Sequential("not a module")  # type: ignore[arg-type]

    def test_backward_through_chain(self):
        model = self._model()
        model.train()
        x = np.random.default_rng(1).standard_normal((3, 4)).astype(np.float32)
        out = model(x)
        grad = model.backward(np.ones_like(out))
        assert grad.shape == x.shape
        assert model[0].weight.grad is not None


class TestCrossEntropyLoss:
    def test_perfect_prediction_low_loss(self):
        loss_fn = nn.CrossEntropyLoss()
        logits = np.asarray([[10.0, -10.0], [-10.0, 10.0]], dtype=np.float32)
        loss, _ = loss_fn(logits, np.asarray([0, 1]))
        assert loss < 1e-3

    def test_uniform_prediction_log_c(self):
        loss_fn = nn.CrossEntropyLoss()
        logits = np.zeros((4, 10), dtype=np.float32)
        loss, _ = loss_fn(logits, np.zeros(4, dtype=np.int64))
        assert loss == pytest.approx(np.log(10), rel=1e-4)

    def test_gradient_sums_to_zero_per_row(self):
        loss_fn = nn.CrossEntropyLoss()
        logits = np.random.default_rng(0).standard_normal((5, 3)).astype(np.float32)
        _, grad = loss_fn(logits, np.asarray([0, 1, 2, 0, 1]))
        np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-6)

    def test_gradient_matches_numerical(self):
        loss_fn = nn.CrossEntropyLoss()
        logits = np.random.default_rng(1).standard_normal((3, 4)).astype(np.float32)
        labels = np.asarray([1, 3, 0])
        _, grad = loss_fn(logits, labels)
        eps = 1e-2
        for i in range(3):
            for j in range(4):
                bumped = logits.copy()
                bumped[i, j] += eps
                upper, _ = loss_fn(bumped, labels)
                bumped[i, j] -= 2 * eps
                lower, _ = loss_fn(bumped, labels)
                numeric = (upper - lower) / (2 * eps)
                assert grad[i, j] == pytest.approx(numeric, abs=2e-3)

    def test_label_smoothing_increases_uniformity(self):
        plain = nn.CrossEntropyLoss()
        smooth = nn.CrossEntropyLoss(label_smoothing=0.2)
        logits = np.asarray([[5.0, 0.0, 0.0]], dtype=np.float32)
        labels = np.asarray([0])
        loss_plain, _ = plain(logits, labels)
        loss_smooth, _ = smooth(logits, labels)
        assert loss_smooth > loss_plain

    def test_shape_validation(self):
        loss_fn = nn.CrossEntropyLoss()
        with pytest.raises(ValueError):
            loss_fn(np.zeros((2, 3, 4), dtype=np.float32), np.zeros(2, dtype=int))
        with pytest.raises(ValueError):
            loss_fn(np.zeros((2, 3), dtype=np.float32), np.zeros(3, dtype=int))

    def test_invalid_smoothing(self):
        with pytest.raises(ValueError):
            nn.CrossEntropyLoss(label_smoothing=1.0)


class TestMSELoss:
    def test_zero_for_equal(self):
        loss, grad = nn.MSELoss()(np.ones(4, dtype=np.float32), np.ones(4, dtype=np.float32))
        assert loss == 0.0
        np.testing.assert_array_equal(grad, np.zeros(4))

    def test_value_and_grad(self):
        predictions = np.asarray([2.0, 0.0], dtype=np.float32)
        targets = np.asarray([0.0, 0.0], dtype=np.float32)
        loss, grad = nn.MSELoss()(predictions, targets)
        assert loss == pytest.approx(2.0)
        np.testing.assert_allclose(grad, [2.0, 0.0], rtol=1e-6)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            nn.MSELoss()(np.zeros(2, dtype=np.float32), np.zeros(3, dtype=np.float32))
