"""Ablation: threshold choice and clipping semantics (our extension).

Two design questions behind the paper's Step 2/3 choices:

1. *Where should the threshold come from?*  Compare clipping at the
   profiled ACT_max (Step 2 only), at the 99th percentile of the profile,
   and at the Algorithm-1 fine-tuned value (Step 3).
2. *What should happen above the threshold?*  The paper maps out-of-range
   activations to zero; the natural alternative saturates at T
   (a tunable ReLU6).  Compare both at the same tuned thresholds.

Expected: ACT_max-derived thresholds (raw or tuned) dominate the
unprotected network; the aggressive 99th-percentile threshold *loses
clean accuracy* (it zeroes the top 1% of legitimate activations in every
layer, and the loss compounds across depth) — which is exactly why the
paper initialises at ACT_max rather than a lower percentile.  Clip-to-zero
at least matches clamp-to-T at the same thresholds.
"""

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_comparison_table
from repro.core.campaign import CampaignConfig, run_campaign
from repro.core.profiling import profile_activations
from repro.core.swap import swap_activations
from repro.data.loader import DataLoader
from repro.experiments import clone_model, paper_fault_rates
from repro.hw.memory import WeightMemory


def test_ablation_threshold_source_and_semantics(
    benchmark, alexnet_bundle, alexnet_hardened, alexnet_eval, record_result
):
    images, labels = alexnet_eval
    images, labels = images[:128], labels[:128]
    hardened_model, thresholds, act_max = alexnet_hardened
    config = CampaignConfig(fault_rates=paper_fault_rates(), trials=8, seed=17)

    def campaign(model):
        return run_campaign(
            model, WeightMemory.from_model(model), images, labels, config
        )

    def experiment():
        # Re-profile to obtain the percentile alternative.
        probe = clone_model(alexnet_bundle)
        profile = profile_activations(
            probe, DataLoader(alexnet_bundle.val_set, batch_size=128), seed=0
        )
        p99 = profile.thresholds_at_percentile(99)

        curves = {}
        curves["unprotected"] = campaign(clone_model(alexnet_bundle))

        actmax_model = clone_model(alexnet_bundle)
        swap_activations(actmax_model, act_max)
        curves["clip@ACTmax"] = campaign(actmax_model)

        p99_model = clone_model(alexnet_bundle)
        swap_activations(p99_model, p99)
        curves["clip@p99"] = campaign(p99_model)

        curves["clip@tuned"] = campaign(hardened_model)

        clamp_model = clone_model(alexnet_bundle)
        swap_activations(clamp_model, thresholds, variant="clamp")
        curves["clamp@tuned"] = campaign(clamp_model)
        return curves

    curves = run_once(benchmark, experiment)

    record_result(
        "ablation_threshold",
        format_comparison_table(
            list(curves.values()),
            labels=list(curves),
            title="Ablation — threshold source and clipping semantics (AlexNet)",
        ),
    )

    auc = {name: curve.auc() for name, curve in curves.items()}
    # ACT_max-derived thresholds beat unprotected.
    for name in ("clip@ACTmax", "clip@tuned", "clamp@tuned"):
        assert auc[name] > auc["unprotected"], name
    # Fine-tuning stays within noise of the raw ACT_max initialisation
    # (faulty activations dwarf either threshold; tuning mostly trades a
    # sliver of clean accuracy for mid-rate robustness).
    assert auc["clip@tuned"] >= auc["clip@ACTmax"] - 0.05
    # The paper's zero-out semantics at least matches saturate-at-T.
    assert auc["clip@tuned"] >= auc["clamp@tuned"] - 0.01
    # The cautionary finding motivating ACT_max as the initialiser: a p99
    # threshold destroys fault-free accuracy (compounding 1%-per-layer
    # clipping of legitimate activations).
    assert (
        curves["clip@p99"].clean_accuracy
        < curves["clip@ACTmax"].clean_accuracy - 0.1
    )
