"""Tests for the fault models."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import nn
from repro.hw.faultmodels import (
    OP_FLIP,
    OP_STUCK0,
    OP_STUCK1,
    BurstFault,
    FaultSet,
    FixedFaultMap,
    RandomBitFlip,
    StuckAt,
    TargetedBitFlip,
)
from repro.hw.memory import WeightMemory


def _memory(words=1000):
    return WeightMemory.from_parameters([("p", nn.Parameter(np.zeros(words)))])


class TestFaultSet:
    def test_empty(self):
        fs = FaultSet.empty()
        assert len(fs) == 0

    def test_flips_constructor(self):
        fs = FaultSet.flips(np.asarray([3, 7]))
        assert len(fs) == 2
        assert (fs.operations == OP_FLIP).all()

    def test_duplicate_bits_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            FaultSet.flips(np.asarray([1, 1]))

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError):
            FaultSet(np.asarray([1, 2]), np.asarray([0], dtype=np.uint8))

    def test_invalid_op_rejected(self):
        with pytest.raises(ValueError):
            FaultSet(np.asarray([1]), np.asarray([9], dtype=np.uint8))

    def test_subset(self):
        fs = FaultSet.flips(np.asarray([1, 2, 3]))
        sub = fs.subset(np.asarray([True, False, True]))
        np.testing.assert_array_equal(sub.bit_indices, [1, 3])


class TestRandomBitFlip:
    def test_rate_zero_gives_no_faults(self):
        fs = RandomBitFlip(0.0).sample(_memory(), np.random.default_rng(0))
        assert len(fs) == 0

    def test_rate_one_flips_everything(self):
        memory = _memory(4)
        fs = RandomBitFlip(1.0).sample(memory, np.random.default_rng(0))
        assert len(fs) == memory.total_bits

    def test_expected_count_binomial(self):
        memory = _memory(1000)  # 32k bits
        rate = 0.01
        counts = [
            len(RandomBitFlip(rate).sample(memory, np.random.default_rng(seed)))
            for seed in range(30)
        ]
        expected = memory.total_bits * rate  # 320
        assert abs(np.mean(counts) - expected) < 0.1 * expected

    def test_indices_unique_and_in_range(self):
        memory = _memory(100)
        fs = RandomBitFlip(0.05).sample(memory, np.random.default_rng(1))
        assert np.unique(fs.bit_indices).size == len(fs)
        assert fs.bit_indices.min() >= 0
        assert fs.bit_indices.max() < memory.total_bits

    def test_deterministic_given_rng(self):
        memory = _memory(100)
        a = RandomBitFlip(0.01).sample(memory, np.random.default_rng(5))
        b = RandomBitFlip(0.01).sample(memory, np.random.default_rng(5))
        np.testing.assert_array_equal(a.bit_indices, b.bit_indices)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            RandomBitFlip(-0.1)
        with pytest.raises(ValueError):
            RandomBitFlip(1.5)

    def test_describe(self):
        assert "1e-06" in RandomBitFlip(1e-6).describe()

    @settings(max_examples=15, deadline=None)
    @given(rate=st.floats(0.0, 0.2), seed=st.integers(0, 100))
    def test_property_sorted_unique(self, rate, seed):
        fs = RandomBitFlip(rate).sample(_memory(50), np.random.default_rng(seed))
        assert (np.diff(fs.bit_indices) > 0).all() if len(fs) > 1 else True


class TestStuckAt:
    def test_operation_codes(self):
        memory = _memory(100)
        fs1 = StuckAt(0.05, value=1).sample(memory, np.random.default_rng(0))
        fs0 = StuckAt(0.05, value=0).sample(memory, np.random.default_rng(0))
        assert (fs1.operations == OP_STUCK1).all()
        assert (fs0.operations == OP_STUCK0).all()

    def test_invalid_value(self):
        with pytest.raises(ValueError):
            StuckAt(0.01, value=2)


class TestBurstFault:
    def test_burst_contiguity(self):
        memory = _memory(100)
        fs = BurstFault(n_bursts=1, burst_length=8).sample(memory, np.random.default_rng(0))
        assert len(fs) == 8
        assert (np.diff(fs.bit_indices) == 1).all()

    def test_zero_bursts(self):
        fs = BurstFault(0).sample(_memory(), np.random.default_rng(0))
        assert len(fs) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstFault(-1)
        with pytest.raises(ValueError):
            BurstFault(1, burst_length=0)


class TestFixedFaultMap:
    def test_ignores_rng(self):
        fs = FaultSet.flips(np.asarray([1, 2, 3]))
        model = FixedFaultMap(fs)
        memory = _memory(10)
        a = model.sample(memory, np.random.default_rng(0))
        b = model.sample(memory, np.random.default_rng(99))
        np.testing.assert_array_equal(a.bit_indices, b.bit_indices)

    def test_oversized_map_rejected(self):
        fs = FaultSet.flips(np.asarray([10_000_000]))
        with pytest.raises(IndexError):
            FixedFaultMap(fs).sample(_memory(10), np.random.default_rng(0))


class TestTargetedBitFlip:
    def test_targets_requested_position(self):
        memory = _memory(100)
        fs = TargetedBitFlip(bit_position=30, n_faults=10).sample(
            memory, np.random.default_rng(0)
        )
        assert len(fs) == 10
        assert ((fs.bit_indices % 32) == 30).all()

    def test_caps_at_word_count(self):
        memory = _memory(5)
        fs = TargetedBitFlip(bit_position=0, n_faults=100).sample(
            memory, np.random.default_rng(0)
        )
        assert len(fs) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            TargetedBitFlip(bit_position=32, n_faults=1)
        with pytest.raises(ValueError):
            TargetedBitFlip(bit_position=0, n_faults=-1)
