"""Model architectures (AlexNet, VGG-16, LeNet-5, MLP) and the zoo."""

from repro.models.alexnet import CifarAlexNet, build_alexnet
from repro.models.lenet import LeNet5, build_lenet5
from repro.models.mlp import MLP, build_mlp
from repro.models.registry import (
    MODEL_BUILDERS,
    build_model,
    computational_layers,
    layer_names,
    model_summary,
)
from repro.models.vgg import VGG16_PLAN, CifarVGG16, build_vgg16
from repro.models.zoo import PretrainedBundle, ZooConfig, get_pretrained, train_model

__all__ = [
    "CifarAlexNet",
    "CifarVGG16",
    "LeNet5",
    "MLP",
    "MODEL_BUILDERS",
    "PretrainedBundle",
    "VGG16_PLAN",
    "ZooConfig",
    "build_alexnet",
    "build_lenet5",
    "build_mlp",
    "build_model",
    "build_vgg16",
    "computational_layers",
    "get_pretrained",
    "layer_names",
    "model_summary",
    "train_model",
]
