"""Tests for batch normalization."""

import numpy as np
import pytest

from repro import nn
from tests.conftest import numerical_gradient


class TestBatchNorm1d:
    def test_training_normalizes_batch(self):
        bn = nn.BatchNorm1d(3)
        bn.train()
        x = np.random.default_rng(0).standard_normal((64, 3)).astype(np.float32) * 5 + 2
        out = bn(x)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-4)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_affine_parameters_apply(self):
        bn = nn.BatchNorm1d(2)
        bn.train()
        bn.weight.data[:] = 3.0
        bn.bias.data[:] = 1.0
        x = np.random.default_rng(1).standard_normal((32, 2)).astype(np.float32)
        out = bn(x)
        np.testing.assert_allclose(out.mean(axis=0), 1.0, atol=1e-4)
        np.testing.assert_allclose(out.std(axis=0), 3.0, atol=5e-2)

    def test_eval_uses_running_stats(self):
        bn = nn.BatchNorm1d(2)
        bn.train()
        rng = np.random.default_rng(2)
        for _ in range(50):
            bn(rng.standard_normal((64, 2)).astype(np.float32) * 2 + 5)
        bn.eval()
        x = rng.standard_normal((16, 2)).astype(np.float32) * 2 + 5
        out = bn(x)
        # After many updates the running stats approximate the data stats.
        assert abs(out.mean()) < 0.5

    def test_eval_deterministic(self):
        bn = nn.BatchNorm1d(2)
        bn.eval()
        x = np.random.default_rng(0).standard_normal((4, 2)).astype(np.float32)
        np.testing.assert_array_equal(bn(x), bn(x))

    def test_running_stats_are_buffers(self):
        bn = nn.BatchNorm1d(2)
        names = {name for name, _ in bn.named_buffers()}
        assert names == {"running_mean", "running_var"}

    def test_wrong_features_rejected(self):
        bn = nn.BatchNorm1d(3)
        with pytest.raises(ValueError):
            bn(np.zeros((4, 2), dtype=np.float32))

    def test_backward_numerical(self):
        bn = nn.BatchNorm1d(2)
        bn.train()
        x = np.random.default_rng(3).standard_normal((8, 2)).astype(np.float32)

        def loss(x_in):
            probe = nn.BatchNorm1d(2)
            probe.train()
            return float((probe(x_in) ** 2).sum() / 2.0)

        out = bn(x)
        grad = bn.backward(out)
        numeric = numerical_gradient(loss, x, eps=1e-2)
        np.testing.assert_allclose(grad, numeric, rtol=0.1, atol=0.05)


class TestBatchNorm2d:
    def test_per_channel_normalization(self):
        bn = nn.BatchNorm2d(3)
        bn.train()
        x = np.random.default_rng(0).standard_normal((8, 3, 6, 6)).astype(np.float32)
        x[:, 1] += 10.0
        out = bn(x)
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-4)

    def test_shape_preserved(self):
        bn = nn.BatchNorm2d(4)
        x = np.zeros((2, 4, 5, 5), dtype=np.float32)
        assert bn(x).shape == x.shape

    def test_wrong_ndim_rejected(self):
        with pytest.raises(ValueError):
            nn.BatchNorm2d(3)(np.zeros((2, 3), dtype=np.float32))

    def test_state_dict_includes_running_stats(self):
        bn = nn.BatchNorm2d(2)
        state = bn.state_dict()
        assert set(state) == {"weight", "bias", "running_mean", "running_var"}


class TestBatchNormValidation:
    def test_bad_momentum(self):
        with pytest.raises(ValueError):
            nn.BatchNorm1d(2, momentum=0.0)
        with pytest.raises(ValueError):
            nn.BatchNorm1d(2, momentum=1.5)

    def test_bad_eps(self):
        with pytest.raises(ValueError):
            nn.BatchNorm1d(2, eps=0.0)
