"""Multi-host campaign sharding: segmented, appendable run directories.

A scenario suite's expanded (rate x trial) cell matrix is embarrassingly
parallel — per-cell seeds depend only on ``(seed, rate index, trial)``
(:func:`repro.core.executor.cell_seed_path`), never on which host,
worker or subset evaluates the cell.  This module promotes that contract
into a fleet-scale execution model:

:class:`ShardPlan.split` partitions the suite's cells into N
self-contained shards (round-robin over the serial enumeration order:
scenario-major, rate-major, trial-minor).  Adaptive scenarios contribute
one cell per fault rate — the executor cell *is* the whole trial family
(:class:`~repro.core.batched.AdaptiveCampaignTask`), so stopping
decisions can never straddle a shard boundary.

:func:`run_scenario_shard` executes one shard on any host into a
segmented run directory::

    run_dir/
      shards/<i>-of-<N>/manifest.json    # identity + full spec list
      shards/<i>-of-<N>/checkpoint.json  # resumable, bound to i/N
      shards/<i>-of-<N>/partial/*.json   # this shard's cells
      summary.json, <scenario>.json      # written by merge_run

A run directory is appendable: shards may be produced by different
hosts at different times, re-running a shard resumes its own checkpoint
(whose fingerprint binds the shard identity and suite hash, so an
``i/N`` checkpoint refuses to resume as ``j/N`` or ``i/M``), and a late
shard simply lands next to the existing ones.

:func:`merge_run` validates the manifests (same suite hash, same shard
count, all shards present), reassembles per-shard cells into each
scenario's canonical value grid and writes the same per-scenario JSON +
``summary.json`` an unsharded :func:`~repro.scenarios.compile.run_scenarios`
run would have written — byte-identical for any N and any shard
completion order.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.scenarios.compile import (
    ScenarioContext,
    ScenarioResult,
    assemble_scenario_result,
    compile_spec,
    scenario_file_stems,
    write_json_atomic,
    write_results,
)
from repro.scenarios.spec import CampaignSpec, ScenarioSuite

__all__ = [
    "SHARD_FORMAT_VERSION",
    "RUN_LAYOUT",
    "ShardSpec",
    "ShardPlan",
    "suite_fingerprint",
    "run_scenario_shard",
    "merge_run",
]

# Bumped when the manifest/partial schema changes incompatibly; merge
# refuses shards written under a different format.
SHARD_FORMAT_VERSION = 1

SHARDS_DIRNAME = "shards"
MANIFEST_NAME = "manifest.json"
CHECKPOINT_NAME = "checkpoint.json"
PARTIAL_DIRNAME = "partial"
SUMMARY_NAME = "summary.json"

# The segmented run-directory layout, path pattern -> meaning.  The
# "Sharded & segmented runs" table in docs/SCENARIOS.md mirrors these
# entries and tests/test_docs_consistency.py enforces the match both
# directions.
RUN_LAYOUT = {
    "shards/<i>-of-<N>/manifest.json": (
        "shard identity: format version, suite name + hash, shard "
        "arithmetic, per-scenario grids, and the full expanded spec list"
    ),
    "shards/<i>-of-<N>/checkpoint.json": (
        "the shard's resumable executor checkpoint; its fingerprint "
        "binds i/N and the suite hash"
    ),
    "shards/<i>-of-<N>/partial/<scenario>.json": (
        "one scenario's cells executed by this shard, plus its clean "
        "accuracy and any quarantined (failed) cells"
    ),
    "shards/<i>-of-<N>/partial/cells.jsonl": (
        "the shard's append-only per-cell store segment, one record "
        "per logical cell as it completes (see docs/RESULTS.md)"
    ),
    "summary.json": (
        "the merged run summary, byte-identical to an unsharded run's"
    ),
    "<scenario>.json": (
        "per-scenario merged results, the same files as an unsharded "
        "--out run"
    ),
    "store/cells.rcs": (
        "the canonical columnar per-cell store, reassembled by merge "
        "byte-identical to the unsharded run's (see docs/RESULTS.md)"
    ),
}

_SHARD_RE = re.compile(r"^\s*(\d+)\s*/\s*(\d+)\s*$")


def suite_fingerprint(name: str, specs: Sequence[CampaignSpec]) -> str:
    """A content hash of the expanded suite (name + every spec).

    Canonical-JSON sha256 over ``CampaignSpec.to_dict`` payloads: two
    hosts agree on the hash iff they expanded the same suite, which is
    exactly what merging requires.
    """
    payload = {"name": name, "specs": [spec.to_dict() for spec in specs]}
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ShardSpec:
    """One shard's identity: 1-based ``index`` out of ``count``."""

    index: int
    count: int

    def __post_init__(self) -> None:
        index, count = int(self.index), int(self.count)
        if count < 1:
            raise ValueError(f"shard count must be >= 1, got {count}")
        if not 1 <= index <= count:
            raise ValueError(
                f"shard index must lie in 1..{count}, got {index}"
            )
        object.__setattr__(self, "index", index)
        object.__setattr__(self, "count", count)

    @classmethod
    def parse(cls, text: "str | ShardSpec") -> "ShardSpec":
        """Parse the CLI form ``"i/N"`` (1-based)."""
        if isinstance(text, ShardSpec):
            return text
        match = _SHARD_RE.match(str(text))
        if match is None:
            raise ValueError(
                f"shard must look like 'i/N' (1-based), got {text!r}"
            )
        return cls(int(match.group(1)), int(match.group(2)))

    def __str__(self) -> str:
        return f"{self.index}/{self.count}"

    @property
    def dirname(self) -> str:
        return f"{self.index}-of-{self.count}"


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic partition of a suite's cells into N shards.

    Cells are enumerated in the executor's serial order (scenario-major,
    rate-major, trial-minor) and dealt round-robin: global cell ``k``
    belongs to shard ``(k mod N) + 1``.  Round-robin keeps every shard's
    load within one cell of even regardless of how rates and trials are
    distributed across scenarios.  Adaptive scenarios occupy one cell
    per rate — the whole (rate, trial-family) unit — so their stopping
    decisions are invariant to the shard count.
    """

    suite_name: str
    suite_hash: str
    specs: "tuple[CampaignSpec, ...]"
    count: int

    @classmethod
    def split(
        cls,
        suite: "ScenarioSuite | Sequence[CampaignSpec]",
        count: int,
    ) -> "ShardPlan":
        """Partition ``suite`` into ``count`` self-contained shards."""
        if isinstance(suite, ScenarioSuite):
            name, specs = suite.name, tuple(suite.specs)
        else:
            name, specs = "scenarios", tuple(suite)
        if not specs:
            raise ValueError("cannot shard an empty scenario suite")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError("scenario names must be unique within a run")
        count = int(count)
        if count < 1:
            raise ValueError(f"shard count must be >= 1, got {count}")
        return cls(
            suite_name=name,
            suite_hash=suite_fingerprint(name, specs),
            specs=specs,
            count=count,
        )

    def grid_shape(self, spec: CampaignSpec) -> "tuple[int, int]":
        """The executor cell grid of one scenario: (n_rates, n_cells_per_rate)."""
        return (len(spec.rates), 1 if spec.mode == "adaptive" else spec.trials)

    @property
    def total_cells(self) -> int:
        return sum(
            rates * trials
            for rates, trials in (self.grid_shape(s) for s in self.specs)
        )

    def shard(self, index: int) -> ShardSpec:
        return ShardSpec(index, self.count)

    def shards(self) -> "list[ShardSpec]":
        return [ShardSpec(i, self.count) for i in range(1, self.count + 1)]

    def cells_for(
        self, shard: "ShardSpec | str"
    ) -> "list[list[tuple[int, int]]]":
        """Per-scenario ``(rate_index, trial)`` cells owned by one shard."""
        shard = ShardSpec.parse(shard)
        if shard.count != self.count:
            raise ValueError(
                f"shard {shard} does not belong to a {self.count}-way plan"
            )
        assigned: "list[list[tuple[int, int]]]" = []
        cursor = 0
        for spec in self.specs:
            n_rates, n_trials = self.grid_shape(spec)
            mine: "list[tuple[int, int]]" = []
            for rate_index in range(n_rates):
                for trial in range(n_trials):
                    if cursor % self.count == shard.index - 1:
                        mine.append((rate_index, trial))
                    cursor += 1
            assigned.append(mine)
        return assigned

    def manifest(self, shard: "ShardSpec | str") -> dict:
        """The shard's self-contained identity record."""
        shard = ShardSpec.parse(shard)
        cells = self.cells_for(shard)
        return {
            "format": SHARD_FORMAT_VERSION,
            "suite": self.suite_name,
            "suite_hash": self.suite_hash,
            "shard": {"index": shard.index, "count": shard.count},
            "grid": {
                spec.name: {
                    "rates": self.grid_shape(spec)[0],
                    "trials": self.grid_shape(spec)[1],
                    "cells": len(mine),
                }
                for spec, mine in zip(self.specs, cells)
            },
            "specs": [spec.to_dict() for spec in self.specs],
        }

    @classmethod
    def from_manifest(cls, manifest: "dict") -> "ShardPlan":
        """Rebuild the plan a manifest was written from (hash-verified)."""
        specs = tuple(
            CampaignSpec.from_dict(payload) for payload in manifest["specs"]
        )
        plan = cls(
            suite_name=str(manifest["suite"]),
            suite_hash=str(manifest["suite_hash"]),
            specs=specs,
            count=int(manifest["shard"]["count"]),
        )
        actual = suite_fingerprint(plan.suite_name, specs)
        if actual != plan.suite_hash:
            raise ValueError(
                f"manifest suite hash {plan.suite_hash[:12]}... does not "
                f"match its own spec list ({actual[:12]}...); the manifest "
                "was corrupted or edited"
            )
        return plan


def _task_clean_accuracy(task: Any) -> float:
    """The deterministic fault-free accuracy of a compiled cell task."""
    base = getattr(task, "base", task)  # unwrap the adaptive family task
    return float(base.clean_accuracy())


def _cell_payload_value(value: Any) -> "float | list[float]":
    """One grid cell as JSON: a float, or a list for vector cells."""
    import numpy as np

    if np.ndim(value) == 0:
        return float(value)
    return [float(v) for v in np.asarray(value).reshape(-1)]


def run_scenario_shard(
    scenarios: "ScenarioSuite | Sequence[CampaignSpec]",
    shard: "ShardSpec | str",
    run_dir: "str | Path",
    workers: "int | None" = None,
    progress: "Callable | None" = None,
    context: "ScenarioContext | None" = None,
    max_retries: "int | None" = None,
    cell_timeout: "float | None" = None,
    on_cell_error: "str | None" = None,
    store: bool = True,
) -> Path:
    """Execute one shard of a suite into a segmented run directory.

    Only the scenarios owning cells in this shard are compiled (a shard
    never trains models it will not evaluate).  The shard's checkpoint
    lives inside its own segment directory and its fingerprint carries
    the shard identity and suite hash, so re-running the same shard
    resumes while any cross-shard or cross-suite resume is refused.
    Returns the shard directory.

    ``max_retries``/``cell_timeout``/``on_cell_error`` feed the
    executor's :class:`~repro.core.executor.SupervisionPolicy`; with
    ``on_cell_error != "abort"`` a cell that exhausts its retry budget
    is recorded on the partial's ``failed`` list (and left out of
    ``cells``) instead of aborting the shard — ``merge_run`` surfaces
    those cells rather than failing its coverage check.

    With ``store`` left on, every completed cell is also appended to
    the shard's own store segment
    (``partial/cells.jsonl``, see ``docs/RESULTS.md``) as it finishes;
    ``merge_run`` reassembles the segments into the canonical columnar
    store and cross-checks them against the merged results.
    """
    from repro.core.executor import CampaignExecutor

    shard = ShardSpec.parse(shard)
    if isinstance(scenarios, ScenarioSuite) and workers is None:
        workers = scenarios.workers
    workers = 1 if workers is None else workers
    plan = ShardPlan.split(scenarios, shard.count)

    shard_dir = Path(run_dir) / SHARDS_DIRNAME / shard.dirname
    shard_dir.mkdir(parents=True, exist_ok=True)
    manifest = plan.manifest(shard)
    manifest_path = shard_dir / MANIFEST_NAME
    if manifest_path.exists():
        existing = json.loads(manifest_path.read_text())
        if existing != manifest:
            raise ValueError(
                f"shard directory {shard_dir} belongs to a different "
                "suite or plan (manifest mismatch); delete it or use a "
                "fresh run directory"
            )
    else:
        write_json_atomic(manifest_path, manifest)

    cells = plan.cells_for(shard)
    stems = scenario_file_stems([spec.name for spec in plan.specs])
    context = context if context is not None else ScenarioContext()

    owners: "list[int]" = []  # spec index per compiled task
    tasks: "list[Any]" = []
    task_cells: "list[list[tuple[int, int]]]" = []
    for spec_index, (spec, mine) in enumerate(zip(plan.specs, cells)):
        if not mine:
            continue
        owners.append(spec_index)
        tasks.append(compile_spec(spec, context))
        task_cells.append(mine)

    partial_dir = shard_dir / PARTIAL_DIRNAME
    partial_dir.mkdir(exist_ok=True)
    if tasks:
        recorder = None
        if store:
            from repro.results.store import (
                SHARD_SEGMENT_FILENAME,
                SegmentRecorder,
            )

            recorder = SegmentRecorder(
                partial_dir / SHARD_SEGMENT_FILENAME,
                [plan.specs[index] for index in owners],
            )
        executor = CampaignExecutor(
            workers=workers,
            progress=progress,
            checkpoint=shard_dir / CHECKPOINT_NAME,
            checkpoint_extra={
                "shard": {
                    "index": shard.index,
                    "count": shard.count,
                    "suite_hash": plan.suite_hash,
                }
            },
            max_retries=max_retries,
            cell_timeout=cell_timeout,
            on_cell_error=on_cell_error,
            recorder=recorder,
        )
        try:
            _, grids = executor.run_grids(tasks, cells=task_cells)
        finally:
            if recorder is not None:
                recorder.close()
        failed_by_task: "dict[int, list[dict]]" = {}
        for record in executor.quarantined:
            failed_by_task.setdefault(int(record["task_index"]), []).append(
                {
                    key: record[key]
                    for key in (
                        "rate_index", "trial", "reason", "attempts", "error"
                    )
                }
            )
        for records in failed_by_task.values():
            records.sort(key=lambda cell: (cell["rate_index"], cell["trial"]))
        for task_index, (spec_index, task, mine, grid) in enumerate(
            zip(owners, tasks, task_cells, grids)
        ):
            failed = failed_by_task.get(task_index, [])
            failed_cells = {
                (cell["rate_index"], cell["trial"]) for cell in failed
            }
            payload = {
                "format": SHARD_FORMAT_VERSION,
                "name": plan.specs[spec_index].name,
                "clean_accuracy": _task_clean_accuracy(task),
                "cells": {
                    f"{rate_index}/{trial}": _cell_payload_value(
                        grid[rate_index, trial]
                    )
                    for rate_index, trial in mine
                    if (rate_index, trial) not in failed_cells
                },
            }
            if failed:
                # Quarantined cells leave "cells" (their grid entries
                # are NaN) and land here; absent entirely on fault-free
                # shards so those partials keep their historical bytes.
                payload["failed"] = failed
            write_json_atomic(
                partial_dir / f"{stems[spec_index]}.json", payload
            )
    return shard_dir


def _load_manifests(run_dir: Path) -> "list[tuple[Path, dict]]":
    """Every ``(shard_dir, manifest)`` under ``run_dir/shards/``."""
    shards_root = run_dir / SHARDS_DIRNAME
    if not shards_root.is_dir():
        raise FileNotFoundError(
            f"{run_dir} has no '{SHARDS_DIRNAME}/' directory; run "
            "`repro scenarios <suite> --shard i/N --out <run_dir>` first"
        )
    manifests = []
    for entry in sorted(shards_root.iterdir()):
        manifest_path = entry / MANIFEST_NAME
        if entry.is_dir() and manifest_path.exists():
            manifests.append((entry, json.loads(manifest_path.read_text())))
    if not manifests:
        raise ValueError(f"no shard manifests found under {shards_root}")
    return manifests


def merge_run(
    run_dir: "str | Path", store: bool = True
) -> "list[ScenarioResult]":
    """Reassemble a segmented run into canonical merged outputs.

    Validates that every shard manifest describes the same suite (equal
    suite hashes and shard counts, each hash matching its own spec
    list), that shards ``1..N`` are all present, and that each shard's
    partial files cover exactly its assigned cells — where quarantined
    cells on a partial's ``failed`` list count as covered and are
    surfaced on the merged results (``failed_cells``) instead of
    failing the check.  Then rebuilds each
    scenario's value grid, assembles
    :class:`~repro.core.metrics.ResilienceCurve` /
    :class:`~repro.core.batched.AdaptiveResult` objects and writes
    per-scenario JSON plus ``summary.json`` into ``run_dir`` — all
    byte-identical to the unsharded run.  Returns the results in suite
    order.

    With ``store`` left on, the canonical per-cell columnar store
    (``store/cells.rcs``) is written too — byte-identical to the
    unsharded run's — and, when every shard carried its append-only
    ``partial/cells.jsonl`` segment, the segments are reassembled and
    cross-checked against it, so a lossy or inconsistent shard store
    cannot merge silently (see ``docs/RESULTS.md``).
    """
    import numpy as np

    from repro.core.batched import adaptive_cell_width

    run_dir = Path(run_dir)
    manifests = _load_manifests(run_dir)

    reference = manifests[0][1]
    for shard_dir, manifest in manifests:
        if manifest.get("format") != SHARD_FORMAT_VERSION:
            raise ValueError(
                f"{shard_dir} was written under shard format "
                f"{manifest.get('format')!r}; this code reads format "
                f"{SHARD_FORMAT_VERSION}"
            )
        if manifest["suite_hash"] != reference["suite_hash"]:
            raise ValueError(
                f"shard {shard_dir.name} was produced from a different "
                f"suite (suite hash {manifest['suite_hash'][:12]}... vs "
                f"{reference['suite_hash'][:12]}...); a run directory "
                "holds exactly one suite"
            )
        if manifest["shard"]["count"] != reference["shard"]["count"]:
            raise ValueError(
                f"shard {shard_dir.name} belongs to a "
                f"{manifest['shard']['count']}-way plan, not the run's "
                f"{reference['shard']['count']}-way plan"
            )

    plan = ShardPlan.from_manifest(reference)
    present = {m["shard"]["index"]: d for d, m in manifests}
    missing = [i for i in range(1, plan.count + 1) if i not in present]
    if missing:
        raise ValueError(
            f"run {run_dir} is incomplete: missing shard(s) "
            f"{', '.join(f'{i}/{plan.count}' for i in missing)} — run "
            "them (on any host) and merge again"
        )

    stems = scenario_file_stems([spec.name for spec in plan.specs])
    grids: "list[np.ndarray]" = []
    for spec in plan.specs:
        n_rates, n_trials = plan.grid_shape(spec)
        if spec.mode == "adaptive":
            width = adaptive_cell_width(
                spec.trials, weighted=spec.importance is not None
            )
            shape: "tuple[int, ...]" = (n_rates, n_trials, width)
        else:
            shape = (n_rates, n_trials)
        grids.append(np.full(shape, np.nan, dtype=np.float64))
    clean: "dict[int, float]" = {}
    failed_by_spec: "dict[int, list[dict]]" = {}

    for index in range(1, plan.count + 1):
        shard_dir = present[index]
        cells = plan.cells_for(ShardSpec(index, plan.count))
        for spec_index, (spec, mine) in enumerate(zip(plan.specs, cells)):
            if not mine:
                continue
            partial_path = (
                shard_dir / PARTIAL_DIRNAME / f"{stems[spec_index]}.json"
            )
            if not partial_path.exists():
                raise ValueError(
                    f"shard {index}/{plan.count} has no partial result "
                    f"for scenario {spec.name!r} ({partial_path}); the "
                    "shard run is incomplete — re-run it to resume from "
                    "its checkpoint"
                )
            payload = json.loads(partial_path.read_text())
            recorded = payload["cells"]
            shard_failed = list(payload.get("failed", []))
            failed_keys = {
                f"{cell['rate_index']}/{cell['trial']}"
                for cell in shard_failed
            }
            expected = {f"{r}/{t}" for r, t in mine}
            # Quarantined cells count toward coverage: a shard that gave
            # up on a cell still accounted for it, and the merged output
            # surfaces it as a failed outcome instead of this error.
            if set(recorded) | failed_keys != expected or (
                set(recorded) & failed_keys
            ):
                raise ValueError(
                    f"{partial_path} covers cells "
                    f"{sorted(set(recorded) | failed_keys)} but shard "
                    f"{index}/{plan.count} owns {sorted(expected)}; the "
                    "partial does not match the plan"
                )
            if shard_failed:
                failed_by_spec.setdefault(spec_index, []).extend(
                    dict(cell) for cell in shard_failed
                )
            value = float(payload["clean_accuracy"])
            if spec_index in clean and clean[spec_index] != value:
                raise ValueError(
                    f"shards disagree on the clean accuracy of "
                    f"{spec.name!r} ({clean[spec_index]!r} vs {value!r}); "
                    "were they produced by different code or data?"
                )
            clean[spec_index] = value
            for key, cell_value in recorded.items():
                rate_index, trial = (int(part) for part in key.split("/"))
                grids[spec_index][rate_index, trial] = cell_value

    for records in failed_by_spec.values():
        records.sort(key=lambda cell: (cell["rate_index"], cell["trial"]))
    results = [
        assemble_scenario_result(
            spec, list(spec.rates), grids[spec_index], clean[spec_index],
            failed=failed_by_spec.get(spec_index, ()),
        )
        for spec_index, spec in enumerate(plan.specs)
    ]
    write_results(results, run_dir, suite=plan.suite_name, store=store)
    if store:
        _verify_segment_store(run_dir, present, results)
    return results


def _verify_segment_store(
    run_dir: Path,
    shard_dirs: "dict[int, Path]",
    results: "Sequence[ScenarioResult]",
) -> None:
    """Cross-check the shards' append-only segments against the store.

    Reassembling the per-shard ``partial/cells.jsonl`` segments must
    reproduce exactly the canonical store derived from the merged
    results — the lossless-reassembly contract of ``docs/RESULTS.md``.
    Skipped when any shard ran without a segment (``store=False``
    runs cannot be verified).
    """
    from repro.results.store import (
        SHARD_SEGMENT_FILENAME,
        read_segments,
        store_from_results,
    )

    segments = [
        shard_dirs[index] / PARTIAL_DIRNAME / SHARD_SEGMENT_FILENAME
        for index in sorted(shard_dirs)
    ]
    if not all(path.exists() for path in segments):
        return
    reassembled = read_segments(segments).canonical()
    expected = store_from_results(results)
    if reassembled != expected:
        raise ValueError(
            f"the shards' per-cell store segments under {run_dir} do "
            "not reassemble to the merged results' store; a shard "
            "recorded different cells than its partial JSON claims "
            "(see docs/RESULTS.md)"
        )
