"""FT-ClipAct core: clipped activations, profiling, AUC, campaigns,
threshold fine-tuning (Algorithm 1) and the end-to-end pipeline."""

from repro.core.baselines import (
    MITIGATION_SAMPLERS,
    apply_actmax_clipping,
    apply_clamping,
    apply_relu6,
    dmr_sampler,
    ecc_sampler,
    run_mitigation_sweep,
    tmr_sampler,
)
from repro.core.campaign import (
    CampaignConfig,
    FaultInjectionCampaign,
    FaultSampler,
    default_fault_rates,
    fault_model_sampler,
    random_bitflip_sampler,
    run_campaign,
)
from repro.core.clipped import ClampedReLU, ClippedLeakyReLU, ClippedReLU
from repro.core.executor import (
    CampaignExecutor,
    CellResult,
    WeightFaultCellTask,
    resolve_workers,
)
from repro.core.fat import FaultAwareTrainer
from repro.core.quantized import QuantizedCellTask, run_quantized_campaign
from repro.core.finetune import (
    FineTuneConfig,
    FineTuneResult,
    IterationTrace,
    LayerAUCEvaluator,
    ThresholdFineTuner,
    fine_tune_threshold,
    make_layer_auc_evaluator,
)
from repro.core.metrics import (
    BoxStats,
    ResilienceCurve,
    auc_resilience,
    evaluate_accuracy_arrays,
    predict_labels,
)
from repro.core.pipeline import FTClipAct, FTClipActConfig, HardenedModel, harden_model
from repro.core.suffix import SuffixForwardEngine
from repro.core.profiling import (
    ActivationProfiler,
    LayerActivationStats,
    ProfileResult,
    profile_activations,
)
from repro.core.swap import (
    ActivationSite,
    ActivationSwapResult,
    find_activation_sites,
    get_thresholds,
    set_thresholds,
    swap_activations,
)

__all__ = [
    "ActivationProfiler",
    "ActivationSite",
    "ActivationSwapResult",
    "BoxStats",
    "CampaignConfig",
    "CampaignExecutor",
    "CellResult",
    "ClampedReLU",
    "ClippedLeakyReLU",
    "ClippedReLU",
    "FTClipAct",
    "FTClipActConfig",
    "FaultInjectionCampaign",
    "FaultAwareTrainer",
    "FaultSampler",
    "FineTuneConfig",
    "FineTuneResult",
    "HardenedModel",
    "IterationTrace",
    "LayerAUCEvaluator",
    "LayerActivationStats",
    "MITIGATION_SAMPLERS",
    "ProfileResult",
    "QuantizedCellTask",
    "ResilienceCurve",
    "SuffixForwardEngine",
    "ThresholdFineTuner",
    "WeightFaultCellTask",
    "apply_actmax_clipping",
    "apply_clamping",
    "apply_relu6",
    "auc_resilience",
    "default_fault_rates",
    "dmr_sampler",
    "ecc_sampler",
    "evaluate_accuracy_arrays",
    "fault_model_sampler",
    "find_activation_sites",
    "fine_tune_threshold",
    "get_thresholds",
    "harden_model",
    "make_layer_auc_evaluator",
    "predict_labels",
    "profile_activations",
    "random_bitflip_sampler",
    "resolve_workers",
    "run_campaign",
    "run_mitigation_sweep",
    "run_quantized_campaign",
    "set_thresholds",
    "swap_activations",
    "tmr_sampler",
]
