"""Tests for the pre-trained model zoo (train-once, cache, reload)."""

import numpy as np
import pytest

from repro.models import ZooConfig, get_pretrained, train_model
from repro.utils.cache import ArtifactCache

pytestmark = pytest.mark.slow  # every test trains (or retrains) a network

# A deliberately tiny config so zoo tests stay fast.
TINY = ZooConfig(
    model="lenet5",
    width_mult=1.0,
    n_train=300,
    n_val=80,
    n_test=80,
    epochs=5,
    batch_size=64,
    seed=7,
)


class TestTrainModel:
    def test_produces_working_model(self):
        bundle = train_model(TINY)
        assert bundle.clean_accuracy > 0.5  # far above the 0.1 chance level
        assert not bundle.from_cache
        images, _ = bundle.test_set.arrays()
        out = bundle.model(images[:4])
        assert out.shape == (4, 10)

    def test_model_left_in_eval_mode(self):
        bundle = train_model(TINY)
        assert not bundle.model.training


class TestGetPretrained:
    def test_caches_and_reloads(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        first = get_pretrained(TINY, cache=cache)
        assert not first.from_cache
        second = get_pretrained(TINY, cache=cache)
        assert second.from_cache
        assert second.clean_accuracy == pytest.approx(first.clean_accuracy)
        # Same weights bit-for-bit.
        state_a = first.model.state_dict()
        state_b = second.model.state_dict()
        for key in state_a:
            np.testing.assert_array_equal(state_a[key], state_b[key])

    def test_config_change_invalidates_cache(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        get_pretrained(TINY, cache=cache)
        other = get_pretrained(TINY, cache=cache, seed=8)
        assert not other.from_cache

    def test_overrides_applied(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        bundle = get_pretrained(TINY, cache=cache, n_test=40)
        assert bundle.config.n_test == 40
        assert len(bundle.test_set) == 40

    def test_retrain_flag(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        get_pretrained(TINY, cache=cache)
        again = get_pretrained(TINY, cache=cache, retrain=True)
        assert not again.from_cache

    def test_datasets_deterministic_across_cache_hit(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        first = get_pretrained(TINY, cache=cache)
        second = get_pretrained(TINY, cache=cache)
        a, _ = first.test_set.arrays()
        b, _ = second.test_set.arrays()
        np.testing.assert_array_equal(a, b)

    def test_name_property(self, tmp_path):
        bundle = get_pretrained(TINY, cache=ArtifactCache(tmp_path))
        assert bundle.name == "lenet5"
