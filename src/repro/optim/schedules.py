"""Learning-rate schedules.

Schedules mutate ``optimizer.lr`` in place; call :meth:`step` once per epoch
(or per iteration, at the caller's choice).
"""

from __future__ import annotations

import math

from repro.optim.optimizer import Optimizer
from repro.utils.validation import check_positive

__all__ = ["LRSchedule", "ConstantLR", "StepLR", "CosineAnnealingLR", "WarmupWrapper"]


class LRSchedule:
    """Base class: tracks the epoch counter and the optimizer's base LR."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def lr_at(self, epoch: int) -> float:
        """The learning rate this schedule prescribes for ``epoch``."""
        raise NotImplementedError

    def step(self) -> float:
        """Advance one epoch and apply the new LR; returns it."""
        self.epoch += 1
        new_lr = self.lr_at(self.epoch)
        self.optimizer.lr = new_lr
        return new_lr


class ConstantLR(LRSchedule):
    """No-op schedule (keeps the base LR)."""

    def lr_at(self, epoch: int) -> float:
        return self.base_lr


class StepLR(LRSchedule):
    """Multiply the LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        check_positive("step_size", step_size)
        check_positive("gamma", gamma)
        self.step_size = int(step_size)
        self.gamma = float(gamma)

    def lr_at(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class CosineAnnealingLR(LRSchedule):
    """Cosine decay from the base LR to ``min_lr`` over ``total_epochs``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 0.0):
        super().__init__(optimizer)
        check_positive("total_epochs", total_epochs)
        if min_lr < 0:
            raise ValueError(f"min_lr must be non-negative, got {min_lr}")
        self.total_epochs = int(total_epochs)
        self.min_lr = float(min_lr)

    def lr_at(self, epoch: int) -> float:
        progress = min(epoch, self.total_epochs) / self.total_epochs
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine


class WarmupWrapper(LRSchedule):
    """Linear warm-up for the first ``warmup_epochs``, then an inner schedule."""

    def __init__(self, inner: LRSchedule, warmup_epochs: int):
        super().__init__(inner.optimizer)
        check_positive("warmup_epochs", warmup_epochs)
        self.inner = inner
        self.warmup_epochs = int(warmup_epochs)

    def lr_at(self, epoch: int) -> float:
        if epoch < self.warmup_epochs:
            return self.base_lr * (epoch + 1) / self.warmup_epochs
        return self.inner.lr_at(epoch - self.warmup_epochs)
