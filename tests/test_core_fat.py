"""Tests for fault-aware training (the related-work baseline)."""

import numpy as np
import pytest

from repro.core.campaign import CampaignConfig, run_campaign
from repro.core.fat import FaultAwareTrainer
from repro.data import DataLoader, SyntheticCIFAR10
from repro.hw.memory import WeightMemory
from repro.models import MLP
from repro.optim import Adam, Trainer


def _data():
    generator = SyntheticCIFAR10(image_size=8, seed=3)
    return generator.dataset(400, "train"), generator.generate(96, "test")


class TestFaultAwareTrainer:
    def test_trains_to_useful_clean_accuracy(self):
        """FAT converges; clean accuracy (no faults) lands near the plain
        trainer's despite half the batches being corrupted."""
        from repro.core.metrics import evaluate_accuracy_arrays

        train, (images, labels) = _data()
        model = MLP(3 * 8 * 8, 10, hidden=(64,), seed=0)
        trainer = FaultAwareTrainer(
            model,
            Adam(model.parameters(), lr=2e-3),
            train_fault_rate=1e-5,
            clean_batch_fraction=0.5,
            seed=1,
        )
        trainer.fit(DataLoader(train, 64, shuffle=True, seed=0), epochs=10)
        assert evaluate_accuracy_arrays(model, images, labels) > 0.6

    def test_weights_clean_after_training(self):
        """Transient training faults must never persist in the weights."""
        train, _ = _data()
        model = MLP(3 * 8 * 8, 10, hidden=(32,), seed=0)
        trainer = FaultAwareTrainer(
            model,
            Adam(model.parameters(), lr=2e-3),
            train_fault_rate=1e-3,
            seed=2,
        )
        trainer.fit(DataLoader(train, 64, shuffle=True, seed=0), epochs=2)
        for param in model.parameters():
            assert np.isfinite(param.data).all()
            # No 2^128-scaled weights left behind.
            assert np.abs(param.data).max() < 1e6

    def test_fat_cannot_fix_float32_exponent_flips(self):
        """The finding that supports the paper's thesis: against float32
        bit flips, fault-aware training barely moves the resilience curve
        (no gradient adjustment tolerates a 2^128-scaled weight), whereas
        clipping the activations does."""
        from repro.core.swap import swap_activations

        train, (images, labels) = _data()

        plain = MLP(3 * 8 * 8, 10, hidden=(64,), seed=0)
        Trainer(plain, Adam(plain.parameters(), lr=2e-3)).fit(
            DataLoader(train, 64, shuffle=True, seed=0), epochs=10
        )
        fat = MLP(3 * 8 * 8, 10, hidden=(64,), seed=0)
        FaultAwareTrainer(
            fat,
            Adam(fat.parameters(), lr=2e-3),
            train_fault_rate=5e-5,
            clean_batch_fraction=0.5,
            seed=3,
        ).fit(DataLoader(train, 64, shuffle=True, seed=0), epochs=10)

        config = CampaignConfig(fault_rates=(3e-4, 1e-3), trials=6, seed=9)
        plain_curve = run_campaign(
            plain, WeightMemory.from_model(plain), images, labels, config
        )
        fat_curve = run_campaign(
            fat, WeightMemory.from_model(fat), images, labels, config
        )
        clipped = MLP(3 * 8 * 8, 10, hidden=(64,), seed=0)
        clipped.load_state_dict(plain.state_dict())
        swap_activations(clipped, 30.0)
        clip_curve = run_campaign(
            clipped, WeightMemory.from_model(clipped), images, labels, config
        )
        # Clipping clearly beats both trained-only variants under faults.
        assert clip_curve.auc() > plain_curve.auc() + 0.05
        assert clip_curve.auc() > fat_curve.auc() + 0.05

    def test_invalid_rates_rejected(self):
        model = MLP(3 * 8 * 8, 10, hidden=(8,), seed=0)
        with pytest.raises(ValueError):
            FaultAwareTrainer(model, Adam(model.parameters()), train_fault_rate=1.5)
        with pytest.raises(ValueError):
            FaultAwareTrainer(
                model, Adam(model.parameters()), clean_batch_fraction=-0.1
            )
