"""Tests for argument-validation helpers."""

import numpy as np
import pytest

from repro.utils.validation import (
    as_pair,
    check_dtype,
    check_in_choices,
    check_ndim,
    check_non_negative,
    check_positive,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 3) == 3

    @pytest.mark.parametrize("value", [0, -1, -0.5])
    def test_rejects_non_positive(self, value):
        with pytest.raises(ValueError, match="x must be positive"):
            check_positive("x", value)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("x", 0) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative("x", -1e-9)


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        assert check_probability("p", value) == value

    @pytest.mark.parametrize("value", [-0.1, 1.1])
    def test_rejects_outside(self, value):
        with pytest.raises(ValueError):
            check_probability("p", value)


class TestCheckInChoices:
    def test_accepts_member(self):
        assert check_in_choices("mode", "a", ("a", "b")) == "a"

    def test_rejects_non_member(self):
        with pytest.raises(ValueError, match="mode must be one of"):
            check_in_choices("mode", "c", ("a", "b"))


class TestCheckNdim:
    def test_accepts_matching(self):
        arr = np.zeros((2, 3))
        assert check_ndim("a", arr, 2) is arr

    def test_rejects_mismatch(self):
        with pytest.raises(ValueError):
            check_ndim("a", np.zeros(3), 2)


class TestCheckDtype:
    def test_accepts_matching(self):
        arr = np.zeros(3, dtype=np.float32)
        assert check_dtype("a", arr, np.float32) is arr

    def test_rejects_mismatch(self):
        with pytest.raises(TypeError):
            check_dtype("a", np.zeros(3, dtype=np.float64), np.float32)


class TestAsPair:
    def test_int_duplicated(self):
        assert as_pair("k", 3) == (3, 3)

    def test_pair_passthrough(self):
        assert as_pair("k", (2, 4)) == (2, 4)

    def test_list_accepted(self):
        assert as_pair("k", [1, 2]) == (1, 2)

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            as_pair("k", (1, 2, 3))
