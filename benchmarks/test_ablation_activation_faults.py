"""Ablation: faults in activation memory (our extension).

The paper injects into the weight memory; accelerators also buffer
feature maps in on-chip SRAM.  Activation-memory upsets are transient
(one inference) but hit values *after* the weights did their work — and
they land before the activation function, so the paper's clipped
activations bound them exactly the same way.

Expected shape: the unprotected network degrades with the activation
fault rate; the clipped network holds substantially more accuracy at
every damaging rate.
"""

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_rate, format_table
from repro.core.campaign import CampaignConfig
from repro.core.executor import CampaignExecutor
from repro.experiments import campaign_workers, clone_model
from repro.hw.actfaults import ActivationFaultCellTask

RATES = (1e-6, 1e-5, 1e-4, 1e-3)
TRIALS = 6
SEED = 77


def test_ablation_activation_memory_faults(
    benchmark, alexnet_bundle, alexnet_hardened, alexnet_eval, record_result
):
    images, labels = alexnet_eval
    images, labels = images[:128], labels[:128]
    hardened_model, _, _ = alexnet_hardened
    config = CampaignConfig(fault_rates=RATES, trials=TRIALS, seed=SEED)

    def experiment():
        # Both variants are one cross-campaign sweep over the unified
        # executor (common random numbers via the shared seed; with
        # REPRO_WORKERS > 1 the two campaigns' cells share one pool).
        plain = clone_model(alexnet_bundle)
        tasks = [
            ActivationFaultCellTask(plain, images, labels, config, label="plain"),
            ActivationFaultCellTask(
                hardened_model, images, labels, config, label="ft-clipact"
            ),
        ]
        executor = CampaignExecutor(workers=campaign_workers())
        plain_curve, clipped_curve = executor.run_tasks(tasks)
        return (
            [float(m) for m in plain_curve.mean_accuracies()],
            [float(m) for m in clipped_curve.mean_accuracies()],
        )

    plain_means, clipped_means = run_once(benchmark, experiment)

    rows = [
        [format_rate(rate), f"{p:.4f}", f"{c:.4f}"]
        for rate, p, c in zip(RATES, plain_means, clipped_means)
    ]
    record_result(
        "ablation_activation_faults",
        format_table(
            ["act fault_rate", "unprotected", "ft-clipact"],
            rows,
            title="Ablation — AlexNet under activation-memory bit flips",
        ),
    )

    # Degradation with rate for the unprotected network.
    assert plain_means[0] > plain_means[-1] + 0.1
    # Clipping bounds activation corruption: no worse anywhere, clearly
    # better at the damaging end.
    assert all(c >= p - 0.03 for p, c in zip(plain_means, clipped_means))
    assert clipped_means[-1] > plain_means[-1] + 0.1
