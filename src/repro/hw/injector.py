"""Reversible application of fault sets to a weight memory.

The injector applies a :class:`~repro.hw.faultmodels.FaultSet` to the live
parameter arrays, remembers the original words it touched, and can undo
everything exactly — so one trained model serves thousands of
fault-injection trials without reloading weights.

Copy-on-write: when the model's weights are read-only shared-memory
views (the zero-copy tensor plane, :mod:`repro.utils.shm`), injection
requests a private copy of **only the regions the fault set touches**
(:func:`repro.hw.memory.materialize_region`) before writing — the
injector's ``affected_layers`` cut-point report and its CoW footprint
are the same set by construction, and every other tensor in the network
stays mapped read-only once per host.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.hw.bits import flip_bits_in_words, set_bits_in_words
from repro.hw.faultmodels import (
    OP_FLIP,
    OP_STUCK0,
    OP_STUCK1,
    FaultModel,
    FaultSet,
)
from repro.hw.memory import MemoryRegion, WeightMemory, materialize_region
from repro.utils.rng import as_generator

__all__ = ["InjectionRecord", "FaultInjector"]


@dataclass(eq=False)  # identity equality: records are tracked by object
class InjectionRecord:
    """Bookkeeping for one applied fault set (enables exact undo)."""

    fault_set: FaultSet
    # One (region, affected word indices, original word values) per region.
    saved: list[tuple[MemoryRegion, np.ndarray, np.ndarray]]

    @property
    def num_faults(self) -> int:
        """Number of fault targets in the applied set."""
        return len(self.fault_set)

    @property
    def num_affected_words(self) -> int:
        """Number of distinct 32-bit words touched."""
        return sum(words.size for _, words, _ in self.saved)

    def affected_layers(self) -> list[str]:
        """Distinct layer names that received at least one fault."""
        seen: list[str] = []
        for region, words, _ in self.saved:
            if words.size and region.layer_name not in seen:
                seen.append(region.layer_name)
        return seen


class FaultInjector:
    """Applies and reverts fault sets on a :class:`WeightMemory`."""

    def __init__(self, memory: WeightMemory):
        self.memory = memory
        self._active: list[InjectionRecord] = []

    @property
    def active_records(self) -> tuple[InjectionRecord, ...]:
        """Currently applied (not yet restored) injections, oldest first."""
        return tuple(self._active)

    def affected_layers(self, fault_set: FaultSet) -> list[str]:
        """Layer names ``fault_set`` would touch, *without* applying it.

        This is the cut-point report of the suffix re-execution engine
        (:mod:`repro.core.suffix`): every layer upstream of the first
        affected layer keeps bit-identical activations under this fault
        set, so re-executing from that layer reproduces the full faulted
        forward exactly.
        """
        seen: list[str] = []
        for region, words, _ in self.memory.locate(fault_set.bit_indices):
            if words.size and region.layer_name not in seen:
                seen.append(region.layer_name)
        return seen

    def inject(self, fault_set: FaultSet) -> InjectionRecord:
        """Apply ``fault_set`` to the live weights; returns the undo record."""
        record = InjectionRecord(
            fault_set=fault_set, saved=self._apply_faults(fault_set)
        )
        self._active.append(record)
        return record

    def _apply_faults(
        self, fault_set: FaultSet
    ) -> list[tuple[MemoryRegion, np.ndarray, np.ndarray]]:
        """Apply ``fault_set``; return per-region undo state (words, values)."""
        saved: list[tuple[MemoryRegion, np.ndarray, np.ndarray]] = []
        for region, words, bits in self.memory.locate(fault_set.bit_indices):
            # Copy-on-write: only the regions this fault set writes are
            # privatized; the rest of the memory stays a read-only view.
            materialize_region(region)
            flat = region.parameter.data.reshape(-1)
            # Identify this region's slice of the fault set to split by op.
            in_region = (
                (fault_set.bit_indices >= region.bit_offset)
                & (fault_set.bit_indices < region.bit_end)
            )
            ops = fault_set.operations[in_region]

            unique_words = np.unique(words)
            original = flat[unique_words].copy()
            for op, apply_fn in (
                (OP_FLIP, lambda w, b: flip_bits_in_words(flat, w, b)),
                (OP_STUCK0, lambda w, b: set_bits_in_words(flat, w, b, 0)),
                (OP_STUCK1, lambda w, b: set_bits_in_words(flat, w, b, 1)),
            ):
                mask = ops == op
                if mask.any():
                    apply_fn(words[mask], bits[mask])
            saved.append((region, unique_words, original))
        return saved

    def sample_and_inject(
        self, model: FaultModel, rng: "int | np.random.Generator | None"
    ) -> InjectionRecord:
        """Sample from a fault model and apply the result in one call."""
        return self.inject(model.sample(self.memory, as_generator(rng)))

    def restore(self, record: "InjectionRecord | None" = None) -> None:
        """Undo one record (default: the most recent) exactly.

        Restoring an *older* record while newer ones are still active is
        also exact, even when their fault sets touch the same words: the
        newer records are peeled back (newest first), the target is
        undone, and the newer records are re-applied to the now-clean
        words — refreshing their undo state, so a later ``restore_all``
        still returns the memory bit-exactly to the original weights.
        """
        if not self._active:
            raise RuntimeError("no active injections to restore")
        if record is None:
            record = self._active[-1]
        try:
            # InjectionRecord compares by identity, so index() finds the
            # exact record object (or raises for a foreign/stale one).
            index = self._active.index(record)
        except ValueError:
            raise RuntimeError("record is not an active injection") from None
        newer = self._active[index + 1 :]
        for other in reversed(newer):
            self._undo(other)
        self._undo(record)
        del self._active[index]
        for other in newer:
            other.saved = self._apply_faults(other.fault_set)

    def _undo(self, record: InjectionRecord) -> None:
        """Write a record's saved word values back into the parameters."""
        for region, words, original in record.saved:
            region.parameter.data.reshape(-1)[words] = original

    def restore_all(self) -> None:
        """Undo every active injection (newest first)."""
        while self._active:
            self.restore(self._active[-1])

    @contextmanager
    def session(
        self,
        model: FaultModel,
        rng: "int | np.random.Generator | None" = None,
    ) -> Iterator[InjectionRecord]:
        """Context manager: inject on entry, restore exactly on exit.

        ``with injector.session(RandomBitFlip(1e-6), seed) as record: ...``
        """
        record = self.sample_and_inject(model, rng)
        try:
            yield record
        finally:
            # The record may already be restored inside the block.
            if record in self._active:
                self.restore(record)

    @contextmanager
    def apply(self, fault_set: FaultSet) -> Iterator[InjectionRecord]:
        """Context manager around a pre-sampled fault set."""
        record = self.inject(fault_set)
        try:
            yield record
        finally:
            if record in self._active:
                self.restore(record)
