"""Campaign executor throughput: serial vs 2-worker wall clock.

Not a paper figure — an infrastructure benchmark.  It runs the *same*
fixed campaigns (float32 weight-fault and int8 quantized — the two
curve-producing executor paths) once serially and once across two
worker processes, asserts each pair of curves is bit-identical (the
executor's determinism contract), and records all wall-clock times to
``benchmarks/results/BENCH_campaign.json`` so future PRs can track the
speedup trajectory of both paths.  On a single-core machine the
parallel runs are expected to be slower (pool setup + weight shipping
with no cores to win back); the JSON records ``cpus`` so readers can
interpret the ratios.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.core.campaign import CampaignConfig, run_campaign
from repro.core.quantized import run_quantized_campaign
from repro.data import SyntheticCIFAR10
from repro.hw.memory import WeightMemory
from repro.models import LeNet5

from .conftest import RESULTS_DIR

# Fixed workload: a full-size LeNet-5 on 32x32 images, heavy enough that
# per-cell evaluation dominates pool overhead on a multi-core box, small
# enough to stay in CPU-seconds.  Weight training is irrelevant to
# throughput, so the model keeps its freshly initialised weights.
RATES = (1e-5, 3e-5, 1e-4, 3e-4, 1e-3)
TRIALS = 8
EVAL_IMAGES = 256
SEED = 2020


def _model_and_eval_set():
    model = LeNet5(seed=0)
    model.eval()
    images, labels = SyntheticCIFAR10(seed=3).generate(EVAL_IMAGES, "test")
    return model, images, labels


def test_bench_campaign_serial_vs_two_workers(record_result, bench_workers):
    model, images, labels = _model_and_eval_set()
    memory = WeightMemory.from_model(model)
    config = CampaignConfig(fault_rates=RATES, trials=TRIALS, seed=SEED)
    # Fixed 2-worker comparison by default so the JSON stays comparable
    # across PRs; REPRO_WORKERS>1 swaps in a wider pool to explore.
    workers = bench_workers if bench_workers > 1 else 2

    start = time.perf_counter()
    serial = run_campaign(model, memory, images, labels, config, workers=1)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_campaign(model, memory, images, labels, config, workers=workers)
    parallel_seconds = time.perf_counter() - start

    # The headline guarantee: parallelism never changes the science.
    np.testing.assert_array_equal(serial.accuracies, parallel.accuracies)
    assert serial.clean_accuracy == parallel.clean_accuracy

    # Same comparison for the int8 campaign, now that it shares the
    # executor substrate: the speedup trend should cover both paths.
    start = time.perf_counter()
    int8_serial = run_quantized_campaign(model, memory, images, labels, config)
    int8_serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    int8_parallel = run_quantized_campaign(
        model, memory, images, labels, config, workers=workers
    )
    int8_parallel_seconds = time.perf_counter() - start

    np.testing.assert_array_equal(int8_serial.accuracies, int8_parallel.accuracies)
    assert int8_serial.clean_accuracy == int8_parallel.clean_accuracy

    payload = {
        "benchmark": "campaign_executor",
        "cells": len(RATES) * TRIALS,
        "eval_images": EVAL_IMAGES,
        "cpus": os.cpu_count(),
        "workers": workers,
        "serial_seconds": round(serial_seconds, 3),
        "parallel_seconds": round(parallel_seconds, 3),
        "speedup": round(serial_seconds / parallel_seconds, 3),
        "quantized_serial_seconds": round(int8_serial_seconds, 3),
        "quantized_parallel_seconds": round(int8_parallel_seconds, 3),
        "quantized_speedup": round(int8_serial_seconds / int8_parallel_seconds, 3),
        "bit_identical": True,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_campaign.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    record_result(
        "BENCH_campaign",
        "campaign executor: serial {serial_seconds}s vs {workers}-worker "
        "{parallel_seconds}s (speedup {speedup}x on {cpus} CPUs); "
        "quantized serial {quantized_serial_seconds}s vs "
        "{quantized_parallel_seconds}s (speedup {quantized_speedup}x); "
        "bit-identical curves".format(**payload),
    )
