"""Tests for IEEE-754 bit utilities."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.hw.bits import (
    EXPONENT_BITS,
    MANTISSA_BITS,
    SIGN_BIT,
    WORD_BITS,
    bit_field,
    bits_to_float,
    decompose,
    flip_bits_in_words,
    flip_scalar_bit,
    float_to_bits,
    set_bits_in_words,
)


class TestBitLayout:
    def test_field_partition(self):
        fields = [bit_field(i) for i in range(WORD_BITS)]
        assert fields.count("sign") == 1
        assert fields.count("exponent") == 8
        assert fields.count("mantissa") == 23
        assert bit_field(SIGN_BIT) == "sign"
        assert all(bit_field(b) == "exponent" for b in EXPONENT_BITS)
        assert all(bit_field(b) == "mantissa" for b in MANTISSA_BITS)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            bit_field(32)
        with pytest.raises(ValueError):
            bit_field(-1)

    def test_decompose_one(self):
        sign, exponent, mantissa = decompose(1.0)
        assert (sign, exponent, mantissa) == (0, 127, 0)

    def test_decompose_negative_two(self):
        sign, exponent, mantissa = decompose(-2.0)
        assert (sign, exponent, mantissa) == (1, 128, 0)


class TestRoundtrip:
    @given(st.floats(width=32, allow_nan=False))
    def test_float_bits_roundtrip(self, value):
        arr = np.asarray([value], dtype=np.float32)
        np.testing.assert_array_equal(bits_to_float(float_to_bits(arr)), arr)

    def test_known_pattern(self):
        assert float_to_bits(np.asarray([1.0], dtype=np.float32))[0] == 0x3F800000


class TestScalarFlip:
    def test_sign_flip_negates(self):
        assert flip_scalar_bit(3.5, SIGN_BIT) == -3.5

    def test_exponent_msb_flip_explodes_small_value(self):
        """The paper's key mechanism: flipping the exponent MSB of a small
        weight multiplies it by 2^128."""
        flipped = flip_scalar_bit(0.01, 30)
        assert flipped > 1e30

    def test_mantissa_lsb_flip_negligible(self):
        flipped = flip_scalar_bit(1.0, 0)
        assert abs(flipped - 1.0) < 1e-6

    def test_involution(self):
        value = 0.123
        assert flip_scalar_bit(flip_scalar_bit(value, 17), 17) == np.float32(value)

    def test_invalid_position(self):
        with pytest.raises(ValueError):
            flip_scalar_bit(1.0, 32)

    @given(
        st.floats(width=32, allow_nan=False, allow_infinity=False),
        st.integers(0, 31),
    )
    def test_flip_twice_is_identity(self, value, position):
        once = flip_scalar_bit(value, position)
        twice = flip_scalar_bit(once, position)
        np.testing.assert_array_equal(
            np.asarray([twice], dtype=np.float32),
            np.asarray([value], dtype=np.float32),
        )


class TestVectorFlip:
    def test_matches_scalar(self):
        values = np.asarray([1.0, -2.0, 0.5, 100.0], dtype=np.float32)
        words = np.asarray([0, 1, 2, 3])
        bits = np.asarray([31, 30, 0, 23])
        expected = np.asarray(
            [flip_scalar_bit(float(v), int(b)) for v, b in zip(values, bits)],
            dtype=np.float32,
        )
        flip_bits_in_words(values, words, bits)
        np.testing.assert_array_equal(values, expected)

    def test_multiple_bits_same_word(self):
        values = np.asarray([1.0], dtype=np.float32)
        flip_bits_in_words(values, np.asarray([0, 0]), np.asarray([31, 30]))
        step = flip_scalar_bit(flip_scalar_bit(1.0, 31), 30)
        np.testing.assert_array_equal(values, np.asarray([step], dtype=np.float32))

    def test_returns_affected_words(self):
        values = np.zeros(5, dtype=np.float32)
        affected = flip_bits_in_words(values, np.asarray([3, 1, 3]), np.asarray([0, 1, 2]))
        np.testing.assert_array_equal(affected, [1, 3])

    def test_empty_is_noop(self):
        values = np.ones(3, dtype=np.float32)
        affected = flip_bits_in_words(values, np.asarray([]), np.asarray([]))
        assert affected.size == 0
        np.testing.assert_array_equal(values, np.ones(3))

    def test_out_of_range_word(self):
        with pytest.raises(IndexError):
            flip_bits_in_words(np.zeros(2, dtype=np.float32), np.asarray([2]), np.asarray([0]))

    def test_out_of_range_bit(self):
        with pytest.raises(ValueError):
            flip_bits_in_words(np.zeros(2, dtype=np.float32), np.asarray([0]), np.asarray([32]))

    def test_requires_float32_1d(self):
        with pytest.raises(ValueError):
            flip_bits_in_words(np.zeros((2, 2), dtype=np.float32), np.asarray([0]), np.asarray([0]))
        with pytest.raises(ValueError):
            flip_bits_in_words(np.zeros(2, dtype=np.float64), np.asarray([0]), np.asarray([0]))

    def test_involution_vectorised(self):
        rng = np.random.default_rng(0)
        values = rng.standard_normal(64).astype(np.float32)
        original = values.copy()
        words = rng.choice(64, size=20, replace=False)
        bits = rng.integers(0, 32, size=20)
        flip_bits_in_words(values, words, bits)
        assert not np.array_equal(values, original)
        flip_bits_in_words(values, words, bits)
        np.testing.assert_array_equal(values, original)


class TestStuckAt:
    def test_stuck_at_one_sets_bit(self):
        values = np.asarray([0.0], dtype=np.float32)
        set_bits_in_words(values, np.asarray([0]), np.asarray([30]), 1)
        sign, exponent, mantissa = decompose(float(values[0]))
        assert exponent == 0x80  # bit 30 is the exponent MSB

    def test_stuck_at_zero_clears_bit(self):
        values = np.asarray([-1.0], dtype=np.float32)
        set_bits_in_words(values, np.asarray([0]), np.asarray([31]), 0)
        assert values[0] == 1.0

    def test_stuck_matching_value_benign(self):
        values = np.asarray([1.0], dtype=np.float32)
        set_bits_in_words(values, np.asarray([0]), np.asarray([31]), 0)  # already 0
        assert values[0] == 1.0

    def test_invalid_value(self):
        with pytest.raises(ValueError):
            set_bits_in_words(np.zeros(1, dtype=np.float32), np.asarray([0]), np.asarray([0]), 2)
