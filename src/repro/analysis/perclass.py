"""Per-class vulnerability analysis.

Aggregate accuracy can hide that faults hurt some classes far more than
others (a network can collapse into predicting one class — the classic
failure of exponent-flip corruption, where one logit's pathway saturates).
This analysis measures per-class recall under fault injection and the
distribution of predicted classes, exposing that collapse.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import nn
from repro.core.campaign import CampaignConfig, FaultSampler, random_bitflip_sampler
from repro.core.metrics import predict_labels
from repro.hw.injector import FaultInjector
from repro.hw.memory import WeightMemory
from repro.utils.rng import SeedTree

__all__ = ["PerClassResult", "run_per_class_analysis"]


@dataclass
class PerClassResult:
    """Per-class recall and prediction distribution at each fault rate."""

    fault_rates: np.ndarray  # (R,)
    recall: np.ndarray  # (R, C) mean per-class recall over trials
    prediction_share: np.ndarray  # (R, C) fraction of predictions per class
    clean_recall: np.ndarray  # (C,)
    num_classes: int

    def most_vulnerable_classes(self, rate_index: int = -1, k: int = 3) -> list[int]:
        """Classes with the largest recall drop at the given rate."""
        drop = self.clean_recall - self.recall[rate_index]
        return [int(i) for i in np.argsort(drop)[::-1][:k]]

    def prediction_collapse(self, rate_index: int = -1) -> float:
        """Max single-class share of predictions at the given rate.

        1/num_classes means perfectly spread; 1.0 means total collapse
        into one predicted class.
        """
        return float(self.prediction_share[rate_index].max())


def _per_class_stats(
    predictions: np.ndarray, labels: np.ndarray, num_classes: int
) -> tuple[np.ndarray, np.ndarray]:
    """(recall per class, prediction share per class) for one trial."""
    recall = np.zeros(num_classes)
    for cls in range(num_classes):
        mask = labels == cls
        if mask.any():
            recall[cls] = float((predictions[mask] == cls).mean())
    share = np.bincount(
        np.clip(predictions, 0, num_classes - 1), minlength=num_classes
    ).astype(np.float64)
    share /= max(predictions.size, 1)
    return recall, share


def run_per_class_analysis(
    model: nn.Module,
    memory: WeightMemory,
    images: np.ndarray,
    labels: np.ndarray,
    config: "CampaignConfig | None" = None,
    sampler: "FaultSampler | None" = None,
    num_classes: "int | None" = None,
) -> PerClassResult:
    """Sweep fault rates and record per-class recall / prediction share."""
    config = config if config is not None else CampaignConfig()
    sampler = sampler if sampler is not None else random_bitflip_sampler()
    images = np.asarray(images, dtype=np.float32)
    labels = np.asarray(labels, dtype=np.int64)
    if num_classes is None:
        num_classes = int(labels.max()) + 1

    clean_predictions = predict_labels(model, images, config.batch_size)
    clean_recall, _ = _per_class_stats(clean_predictions, labels, num_classes)

    injector = FaultInjector(memory)
    tree = SeedTree(config.seed)
    rates = np.asarray(config.fault_rates, dtype=np.float64)
    recall = np.zeros((rates.size, num_classes))
    share = np.zeros((rates.size, num_classes))

    for rate_index, rate in enumerate(rates):
        for trial in range(config.trials):
            rng = tree.generator(f"rate/{rate_index}/trial/{trial}")
            fault_set = sampler(memory, float(rate), rng)
            with injector.apply(fault_set):
                predictions = predict_labels(model, images, config.batch_size)
            trial_recall, trial_share = _per_class_stats(
                predictions, labels, num_classes
            )
            recall[rate_index] += trial_recall
            share[rate_index] += trial_share
        recall[rate_index] /= config.trials
        share[rate_index] /= config.trials

    return PerClassResult(
        fault_rates=rates,
        recall=recall,
        prediction_share=share,
        clean_recall=clean_recall,
        num_classes=num_classes,
    )
