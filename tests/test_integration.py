"""Cross-module integration tests: the full paper workflow on LeNet-5.

These exercise the exact chain the benchmarks use: zoo training ->
profiling -> swap -> fine-tune -> campaigns -> analysis, on a model large
enough to show the paper's phenomena but small enough for CI.
"""

import numpy as np
import pytest

from repro.analysis.layerwise import run_layerwise_analysis
from repro.core.campaign import CampaignConfig, run_campaign
from repro.core.metrics import evaluate_accuracy_arrays
from repro.core.pipeline import FTClipActConfig, harden_model
from repro.core.swap import get_thresholds
from repro.hw.memory import WeightMemory
from repro.models import LeNet5

pytestmark = pytest.mark.slow  # full-workflow chain; not inner-loop material

RATES = (1e-6, 1e-5, 1e-4, 1e-3)


@pytest.fixture(scope="module")
def lenet_setup(trained_lenet, small_splits, eval_arrays):
    """A hardened clone + an unprotected clone of the trained LeNet."""
    _, val, _ = small_splits
    images, labels = eval_arrays

    unprotected = LeNet5(seed=0)
    unprotected.load_state_dict(trained_lenet.state_dict())
    unprotected.eval()

    hardened = LeNet5(seed=0)
    hardened.load_state_dict(trained_lenet.state_dict())
    hardened.eval()
    report = harden_model(
        hardened,
        val,
        FTClipActConfig(
            profile_images=128,
            eval_images=96,
            trials=3,
            fault_rates=(1e-5, 1e-4),
            seed=5,
            finetune=__import__(
                "repro.core.finetune", fromlist=["FineTuneConfig"]
            ).FineTuneConfig(max_iterations=3, min_iterations=2, tolerance=0.005),
        ),
    )
    return unprotected, hardened, report, images, labels


class TestEndToEndHardening:
    def test_thresholds_at_most_act_max(self, lenet_setup):
        _, _, report, _, _ = lenet_setup
        for layer, threshold in report.thresholds.items():
            assert 0 < threshold <= report.act_max[layer] + 1e-6

    def test_clean_accuracy_survives_hardening(self, lenet_setup):
        unprotected, hardened, _, images, labels = lenet_setup
        base = evaluate_accuracy_arrays(unprotected, images, labels)
        hard = evaluate_accuracy_arrays(hardened, images, labels)
        assert hard >= base - 0.08

    def test_hardened_dominates_under_faults(self, lenet_setup):
        """The headline paper result at LeNet scale."""
        unprotected, hardened, _, images, labels = lenet_setup
        config = CampaignConfig(fault_rates=RATES, trials=5, seed=99)
        base_curve = run_campaign(
            unprotected, WeightMemory.from_model(unprotected), images, labels, config
        )
        hard_curve = run_campaign(
            hardened, WeightMemory.from_model(hardened), images, labels, config
        )
        assert hard_curve.auc() > base_curve.auc() + 0.05
        # At mid rates the gap must be substantial (paper reports ~18-69%).
        mid_gap = hard_curve.mean_accuracies()[2] - base_curve.mean_accuracies()[2]
        assert mid_gap > 0.1

    def test_worst_case_improved(self, lenet_setup):
        """Fig. 7b/7c: the clipped network's box-plot minimum stays near the
        baseline at moderate rates while the unprotected one collapses."""
        unprotected, hardened, _, images, labels = lenet_setup
        config = CampaignConfig(fault_rates=(1e-5, 1e-4), trials=6, seed=7)
        base_curve = run_campaign(
            unprotected, WeightMemory.from_model(unprotected), images, labels, config
        )
        hard_curve = run_campaign(
            hardened, WeightMemory.from_model(hardened), images, labels, config
        )
        assert hard_curve.worst_case()[0] >= base_curve.worst_case()[0]

    def test_monotone_degradation(self, lenet_setup):
        """Paper Fig. 1b/3: accuracy decreases (weakly) with fault rate."""
        unprotected, _, _, images, labels = lenet_setup
        config = CampaignConfig(fault_rates=RATES, trials=6, seed=3)
        curve = run_campaign(
            unprotected, WeightMemory.from_model(unprotected), images, labels, config
        )
        means = curve.mean_accuracies()
        # Allow small non-monotonic noise between adjacent points.
        assert means[0] >= means[-1]
        assert all(means[i] >= means[i + 1] - 0.08 for i in range(len(means) - 1))


class TestLayerwiseOrdering:
    def test_larger_layers_cliff_earlier_in_absolute_faults(
        self, trained_lenet, eval_arrays
    ):
        """Per-layer curves exist for every layer and bigger layers have
        more bits (the paper's explanation for differing per-layer cliffs)."""
        images, labels = eval_arrays
        config = CampaignConfig(fault_rates=(1e-4, 1e-3), trials=2, seed=0)
        result = run_layerwise_analysis(
            trained_lenet, images, labels, config, layers=["CONV-1", "FC-1"]
        )
        assert result.bits_per_layer["FC-1"] > result.bits_per_layer["CONV-1"]
        for curve in result.curves.values():
            assert curve.accuracies.shape == (2, 2)


class TestThresholdsPersistAfterCampaigns:
    def test_campaigns_do_not_touch_thresholds(self, lenet_setup):
        _, hardened, report, images, labels = lenet_setup
        before = get_thresholds(hardened)
        config = CampaignConfig(fault_rates=(1e-4,), trials=2, seed=0)
        run_campaign(
            hardened, WeightMemory.from_model(hardened), images, labels, config
        )
        assert get_thresholds(hardened) == before
        assert before == pytest.approx(report.thresholds)
