"""Ablation: how small can the paper's "small validation subset" be?

Step 1 profiles ACT_max on a subset of the validation set; the paper
emphasises the methodology needs only a *small* subset.  This benchmark
quantifies that: profile with 10 / 50 / 200 images, and measure (a) how
far each layer's ACT_max drifts from the large-profile reference, and
(b) the resulting clipped network's AUC under faults.

Expected shape: ACT_max converges quickly (it is a max statistic of a
heavy-sampled distribution) and the AUC is essentially flat across
profile sizes — confirming the paper's claim.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table
from repro.core.campaign import CampaignConfig, run_campaign
from repro.core.profiling import profile_activations
from repro.core.swap import swap_activations
from repro.data.dataset import Subset
from repro.data.loader import DataLoader
from repro.experiments import clone_model, paper_fault_rates
from repro.hw.memory import WeightMemory

PROFILE_SIZES = (10, 50, 200)


def test_ablation_profile_subset_size(
    benchmark, alexnet_bundle, alexnet_eval, record_result
):
    images, labels = alexnet_eval
    images, labels = images[:128], labels[:128]
    config = CampaignConfig(fault_rates=paper_fault_rates(), trials=6, seed=41)

    def experiment():
        results = {}
        for size in PROFILE_SIZES:
            probe = clone_model(alexnet_bundle)
            subset = Subset(alexnet_bundle.val_set, range(size))
            profile = profile_activations(
                probe, DataLoader(subset, batch_size=128), seed=0
            )
            act_max = {k: max(v, 1e-6) for k, v in profile.act_max.items()}
            swap_activations(probe, act_max)
            curve = run_campaign(
                probe, WeightMemory.from_model(probe), images, labels, config
            )
            results[size] = (act_max, curve)
        return results

    results = run_once(benchmark, experiment)

    reference_act_max, _ = results[max(PROFILE_SIZES)]
    rows = []
    for size, (act_max, curve) in results.items():
        drift = max(
            abs(act_max[layer] - reference_act_max[layer])
            / max(reference_act_max[layer], 1e-9)
            for layer in act_max
        )
        rows.append(
            [size, f"{drift * 100:.1f}%", f"{curve.clean_accuracy:.4f}", f"{curve.auc():.4f}"]
        )
    record_result(
        "ablation_profile_size",
        format_table(
            ["profile images", "max ACT_max drift", "clean acc", "AUC"],
            rows,
            title="Ablation — sensitivity to the Step-1 profiling subset size",
        ),
    )

    aucs = [curve.auc() for _, curve in results.values()]
    clean = [curve.clean_accuracy for _, curve in results.values()]
    # The paper's claim: a small subset suffices.  Even the 10-image
    # profile yields a clipped network within a few points of the
    # 200-image one, on both clean accuracy and AUC.
    assert max(aucs) - min(aucs) < 0.08
    assert max(clean) - min(clean) < 0.08
