"""Paper Fig. 8: VGG-16 with vs without clipped activation functions.

Same panels as Fig. 7 on the deeper VGG-16.  The paper finds the technique
helps VGG-16 even more than AlexNet (654.91% AUC improvement at their
fault range vs 173.32% for AlexNet); the expected shape here is the same
dominance with an equal-or-larger relative AUC gain.
"""

from benchmarks.conftest import TRIALS, run_once
from benchmarks.curves import comparison_curves
from repro.analysis.reporting import format_box_table, format_comparison_table


def test_fig8_vgg16_clipped_vs_unprotected(
    benchmark, vgg16_bundle, vgg16_hardened, vgg16_eval, record_result
):
    images, labels = vgg16_eval
    hardened_model, _, _ = vgg16_hardened

    base, clipped = run_once(
        benchmark,
        lambda: comparison_curves(
            "vgg16", vgg16_bundle, hardened_model, images, labels, TRIALS
        ),
    )

    report = [
        format_comparison_table(
            [base, clipped],
            labels=["unprotected", "clipped"],
            title="Fig. 8a — VGG-16 mean accuracy vs fault rate",
        ),
        "",
        format_box_table(clipped, title="Fig. 8b — clipped VGG-16 accuracy distribution"),
        "",
        format_box_table(base, title="Fig. 8c — unprotected VGG-16 accuracy distribution"),
    ]
    record_result("fig8_vgg16", "\n".join(report))

    base_means = base.mean_accuracies()
    clip_means = clipped.mean_accuracies()
    assert (clip_means >= base_means - 0.02).all()
    assert (clip_means - base_means).max() > 0.10
    assert clipped.auc() > base.auc() * 1.10
    assert (clipped.worst_case() >= base.worst_case() - 0.02).all()
