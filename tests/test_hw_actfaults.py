"""Tests for activation-memory fault injection."""

import numpy as np
import pytest

from repro import nn
from repro.core.campaign import CampaignConfig
from repro.core.metrics import evaluate_accuracy_arrays
from repro.core.swap import swap_activations
from repro.hw.actfaults import (
    ActivationFaultCellTask,
    ActivationFaultInjector,
    flip_activation_bits,
    run_activation_campaign,
)
from repro.models import MLP


class TestFlipActivationBits:
    def test_flips_expected_count(self):
        rng = np.random.default_rng(0)
        values = np.zeros(1000, dtype=np.float32)
        flips = flip_activation_bits(values, 0.01, rng)
        assert flips > 0
        # Each flip changes exactly one bit of a zero word -> non-zero words.
        assert np.count_nonzero(values) <= flips

    def test_rate_zero_noop(self):
        values = np.ones(100, dtype=np.float32)
        assert flip_activation_bits(values, 0.0, np.random.default_rng(0)) == 0
        np.testing.assert_array_equal(values, np.ones(100))

    def test_rejects_wrong_dtype(self):
        with pytest.raises(ValueError):
            flip_activation_bits(
                np.zeros(10, dtype=np.float64), 0.1, np.random.default_rng(0)
            )

    def test_rejects_non_contiguous(self):
        values = np.zeros((10, 10), dtype=np.float32)[:, ::2]
        with pytest.raises(ValueError, match="contiguous"):
            flip_activation_bits(values, 0.1, np.random.default_rng(0))

    def test_mutates_in_place(self):
        values = np.zeros((4, 4), dtype=np.float32)
        flip_activation_bits(values, 0.5, np.random.default_rng(1))
        assert np.count_nonzero(values) > 0


class TestActivationFaultInjector:
    def test_dormant_by_default(self, trained_mlp, mlp_eval_arrays):
        images, labels = mlp_eval_arrays
        clean = evaluate_accuracy_arrays(trained_mlp, images, labels)
        with ActivationFaultInjector(trained_mlp) as injector:
            assert not injector.armed
            unchanged = evaluate_accuracy_arrays(trained_mlp, images, labels)
        assert unchanged == clean

    def test_session_degrades_accuracy(self, trained_mlp, mlp_eval_arrays):
        images, labels = mlp_eval_arrays
        clean = evaluate_accuracy_arrays(trained_mlp, images, labels)
        with ActivationFaultInjector(trained_mlp) as injector:
            with injector.session(1e-3, rng=0):
                with np.errstate(over="ignore", invalid="ignore"):
                    faulty = evaluate_accuracy_arrays(trained_mlp, images, labels)
            assert injector.flips_this_session > 0
        assert faulty < clean

    def test_transient_no_lasting_damage(self, trained_mlp, mlp_eval_arrays):
        images, labels = mlp_eval_arrays
        clean = evaluate_accuracy_arrays(trained_mlp, images, labels)
        with ActivationFaultInjector(trained_mlp) as injector:
            with injector.session(1e-2, rng=1):
                with np.errstate(over="ignore", invalid="ignore"):
                    evaluate_accuracy_arrays(trained_mlp, images, labels)
            after = evaluate_accuracy_arrays(trained_mlp, images, labels)
        assert after == clean
        for param in trained_mlp.parameters():
            assert np.isfinite(param.data).all()

    def test_layer_scoping(self, trained_mlp):
        with ActivationFaultInjector(trained_mlp, layers=["FC-1"]) as injector:
            assert injector.layer_names == ["FC-1"]
        with pytest.raises(ValueError, match="unknown layer"):
            ActivationFaultInjector(trained_mlp, layers=["CONV-1"])

    def test_nested_session_rejected(self, trained_mlp):
        with ActivationFaultInjector(trained_mlp) as injector:
            with injector.session(1e-3, rng=0):
                with pytest.raises(RuntimeError):
                    injector.session(1e-3, rng=0).__enter__()

    def test_remove_makes_inert(self, trained_mlp, mlp_eval_arrays):
        images, labels = mlp_eval_arrays
        injector = ActivationFaultInjector(trained_mlp)
        injector.remove()
        clean = evaluate_accuracy_arrays(trained_mlp, images, labels)
        with injector.session(1e-2, rng=0):
            same = evaluate_accuracy_arrays(trained_mlp, images, labels)
        assert same == clean

    def test_clipping_mitigates_activation_faults(self, trained_mlp, mlp_eval_arrays):
        """Clipped activations bound activation-memory corruption too:
        the faults land on layer outputs *before* the activation function."""
        images, labels = mlp_eval_arrays

        plain = MLP(3 * 8 * 8, 10, hidden=(64, 32), seed=0)
        plain.load_state_dict(trained_mlp.state_dict())
        plain.eval()
        clipped = MLP(3 * 8 * 8, 10, hidden=(64, 32), seed=0)
        clipped.load_state_dict(trained_mlp.state_dict())
        clipped.eval()
        swap_activations(clipped, 30.0)

        rate = 3e-4

        def mean_accuracy(model):
            values = []
            with ActivationFaultInjector(model) as injector:
                for trial in range(5):
                    with injector.session(rate, rng=trial):
                        with np.errstate(over="ignore", invalid="ignore"):
                            values.append(
                                evaluate_accuracy_arrays(model, images, labels)
                            )
            return float(np.mean(values))

        assert mean_accuracy(clipped) > mean_accuracy(plain)


class TestActivationFaultCampaign:
    """run_activation_campaign on the unified executor substrate."""

    @pytest.fixture
    def act_config(self):
        return CampaignConfig(
            fault_rates=(1e-4, 1e-3), trials=3, seed=17, batch_size=96
        )

    def test_two_workers_bit_identical_to_serial(
        self, trained_mlp, mlp_eval_arrays, act_config
    ):
        """The ISSUE's acceptance criterion for the activation path."""
        images, labels = mlp_eval_arrays
        serial = run_activation_campaign(trained_mlp, images, labels, act_config)
        parallel = run_activation_campaign(
            trained_mlp, images, labels, act_config, workers=2
        )
        np.testing.assert_array_equal(serial.accuracies, parallel.accuracies)
        assert serial.clean_accuracy == parallel.clean_accuracy

    def test_campaign_uses_executor_seed_paths(
        self, trained_mlp, mlp_eval_arrays, act_config
    ):
        """The campaign must reproduce a hand-rolled sweep over the
        canonical rate/<i>/trial/<j> seed derivation, cell by cell."""
        from repro.utils.rng import SeedTree

        images, labels = mlp_eval_arrays
        rates = np.asarray(act_config.fault_rates)
        expected = np.empty((rates.size, act_config.trials))
        tree = SeedTree(act_config.seed)
        with ActivationFaultInjector(trained_mlp) as injector:
            for rate_index, rate in enumerate(rates):
                for trial in range(act_config.trials):
                    rng = tree.generator(f"rate/{rate_index}/trial/{trial}")
                    with injector.session(float(rate), rng):
                        expected[rate_index, trial] = evaluate_accuracy_arrays(
                            trained_mlp, images, labels, act_config.batch_size
                        )
        curve = run_activation_campaign(trained_mlp, images, labels, act_config)
        np.testing.assert_array_equal(curve.accuracies, expected)

    def test_hooks_removed_after_campaign(
        self, trained_mlp, mlp_eval_arrays, act_config
    ):
        """The serial path instruments the caller's model; afterwards the
        model must be exactly as clean as before the campaign."""
        images, labels = mlp_eval_arrays
        clean = evaluate_accuracy_arrays(trained_mlp, images, labels)
        run_activation_campaign(trained_mlp, images, labels, act_config)
        # A lingering armed hook would perturb this evaluation.
        assert evaluate_accuracy_arrays(trained_mlp, images, labels) == clean
        # And a second campaign must see an un-instrumented model (the
        # injector rejects double instrumentation only via its session,
        # so check determinism instead).
        first = run_activation_campaign(trained_mlp, images, labels, act_config)
        second = run_activation_campaign(trained_mlp, images, labels, act_config)
        np.testing.assert_array_equal(first.accuracies, second.accuracies)

    def test_layer_scoped_campaign(self, trained_mlp, mlp_eval_arrays, act_config):
        images, labels = mlp_eval_arrays
        scoped = run_activation_campaign(
            trained_mlp, images, labels, act_config, layers=["FC-1"]
        )
        full = run_activation_campaign(trained_mlp, images, labels, act_config)
        assert scoped.accuracies.shape == full.accuracies.shape
        with pytest.raises(ValueError, match="unknown layer"):
            run_activation_campaign(
                trained_mlp, images, labels, act_config, layers=["CONV-9"]
            )

    def test_checkpoint_rejects_other_campaign_kinds(
        self, trained_mlp, mlp_eval_arrays, act_config, tmp_path
    ):
        from repro.core.campaign import run_campaign
        from repro.hw.memory import WeightMemory

        images, labels = mlp_eval_arrays
        path = tmp_path / "act.json"
        run_activation_campaign(
            trained_mlp, images, labels, act_config, checkpoint=str(path)
        )
        memory = WeightMemory.from_model(trained_mlp)
        with pytest.raises(ValueError, match="different campaign"):
            run_campaign(
                trained_mlp, memory, images, labels, act_config,
                checkpoint=str(path),
            )

    def test_task_pickles_without_hooks(self, trained_mlp, mlp_eval_arrays, act_config):
        import pickle

        images, labels = mlp_eval_arrays
        task = ActivationFaultCellTask(
            trained_mlp, images, labels, act_config, label="act"
        )
        clone = pickle.loads(pickle.dumps(task))
        assert clone.kind == "activation-fault"
        runner = clone.make_runner()
        try:
            value = runner.run_cell(0, 0)
        finally:
            runner.close()
        assert 0.0 <= value <= 1.0
