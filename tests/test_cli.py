"""Tests for the command-line interface.

CLI commands run against a deliberately tiny override of the canonical
configs (monkeypatched EXPERIMENT_CONFIGS) so no full-size training runs.
"""

import json

import pytest

import repro.experiments as experiments
from repro.cli import build_parser, main
from repro.models import ZooConfig

TINY = ZooConfig(
    model="lenet5",
    width_mult=1.0,
    n_train=200,
    n_val=100,
    n_test=80,
    epochs=2,
    seed=7,
)


@pytest.fixture(autouse=True)
def tiny_configs(monkeypatch):
    monkeypatch.setitem(experiments.EXPERIMENT_CONFIGS, "lenet5", TINY)


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explode"])

    def test_model_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--model", "resnet"])


class TestCommands:
    def test_train(self, capsys):
        assert main(["train", "--model", "lenet5"]) == 0
        out = capsys.readouterr().out
        assert "clean test accuracy" in out

    def test_profile(self, capsys):
        assert main(["profile", "--model", "lenet5", "--images", "40"]) == 0
        out = capsys.readouterr().out
        assert "ACT_max" in out and "CONV-1" in out

    def test_campaign_unprotected(self, capsys):
        assert (
            main(
                [
                    "campaign",
                    "--model",
                    "lenet5",
                    "--trials",
                    "2",
                    "--eval-images",
                    "48",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "AUC =" in out and "fault_rate" in out

    def test_campaign_int8(self, capsys):
        assert (
            main(
                [
                    "campaign",
                    "--model",
                    "lenet5",
                    "--variant",
                    "int8",
                    "--trials",
                    "2",
                    "--eval-images",
                    "48",
                ]
            )
            == 0
        )
        assert "int8" in capsys.readouterr().out

    @pytest.mark.parametrize("variant", ["relu6", "ecc", "dmr", "tmr"])
    def test_campaign_variants(self, capsys, variant):
        assert (
            main(
                [
                    "campaign",
                    "--model",
                    "lenet5",
                    "--variant",
                    variant,
                    "--trials",
                    "1",
                    "--eval-images",
                    "32",
                ]
            )
            == 0
        )
        assert variant in capsys.readouterr().out

    def test_layerwise(self, capsys):
        assert (
            main(
                [
                    "layerwise",
                    "--model",
                    "lenet5",
                    "--layers",
                    "CONV-1",
                    "--trials",
                    "1",
                    "--eval-images",
                    "32",
                ]
            )
            == 0
        )
        assert "CONV-1" in capsys.readouterr().out

    def test_bitpos(self, capsys):
        assert (
            main(
                [
                    "bitpos",
                    "--model",
                    "lenet5",
                    "--faults",
                    "4",
                    "--trials",
                    "1",
                    "--eval-images",
                    "32",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "mean accuracy" in out

    def test_outcomes(self, capsys):
        assert (
            main(
                [
                    "outcomes",
                    "--model",
                    "lenet5",
                    "--trials",
                    "1",
                    "--eval-images",
                    "32",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "SDC" in out and "masked" in out


class TestScenariosCommand:
    def test_list_bundled(self, capsys):
        assert main(["scenarios", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fig7_alexnet" in out and "stuck_at_memory" in out

    def test_missing_spec_errors(self, capsys):
        assert main(["scenarios"]) == 2
        assert "bundled" in capsys.readouterr().err

    def test_unknown_bundled_name_errors(self, capsys):
        assert main(["scenarios", "not_a_spec"]) == 2
        assert "no bundled" in capsys.readouterr().err

    def test_missing_file_errors_cleanly(self, capsys, tmp_path):
        assert main(["scenarios", str(tmp_path / "nope.yaml")]) == 2
        assert "no such scenario file" in capsys.readouterr().err

    def test_invalid_spec_file_errors_cleanly(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps([{"name": "x", "campaign": "voltage"}]))
        assert main(["scenarios", str(path)]) == 2
        assert "unknown campaign" in capsys.readouterr().err

    def test_runs_spec_file_and_writes_results(self, capsys, tmp_path):
        spec = {
            "name": "cli-tiny",
            "defaults": {
                "model": "lenet5",
                "trials": 1,
                "eval_images": 16,
                "batch_size": 16,
                "rates": [1e-5, 1e-4],
            },
            "scenarios": [
                {"name": "t", "grid": {"campaign": ["weight", "quantized"]}}
            ],
        }
        path = tmp_path / "tiny.json"
        path.write_text(json.dumps(spec))
        out_dir = tmp_path / "out"
        assert (
            main(
                [
                    "scenarios",
                    str(path),
                    "--progress",
                    "--out",
                    str(out_dir),
                    "--checkpoint",
                    str(tmp_path / "ckpt.json"),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "t/campaign=weight" in out and "t/campaign=quantized" in out
        assert "summary.json" in out
        summary = json.loads((out_dir / "summary.json").read_text())
        assert summary["count"] == 2
        # Re-running resumes every cell from the checkpoint.
        assert main(["scenarios", str(path), "--checkpoint", str(tmp_path / "ckpt.json")]) == 0


class TestShardMergeCommands:
    def _spec_file(self, tmp_path):
        spec = {
            "name": "cli-shard",
            "defaults": {
                "model": "lenet5",
                "trials": 1,
                "eval_images": 16,
                "batch_size": 16,
                "rates": [1e-5, 1e-4],
            },
            "scenarios": [
                {"name": "t", "grid": {"campaign": ["weight", "quantized"]}}
            ],
        }
        path = tmp_path / "tiny.json"
        path.write_text(json.dumps(spec))
        return path

    def test_shard_requires_out(self, capsys, tmp_path):
        path = self._spec_file(tmp_path)
        assert main(["scenarios", str(path), "--shard", "1/2"]) == 2
        assert "--out" in capsys.readouterr().err

    def test_shard_rejects_external_checkpoint(self, capsys, tmp_path):
        path = self._spec_file(tmp_path)
        code = main(
            [
                "scenarios", str(path), "--shard", "1/2",
                "--out", str(tmp_path / "run"),
                "--checkpoint", str(tmp_path / "ckpt.json"),
            ]
        )
        assert code == 2
        assert "checkpoint" in capsys.readouterr().err

    def test_bad_shard_string_errors_cleanly(self, capsys, tmp_path):
        path = self._spec_file(tmp_path)
        code = main(
            [
                "scenarios", str(path), "--shard", "5/2",
                "--out", str(tmp_path / "run"),
            ]
        )
        assert code == 2
        assert "shard" in capsys.readouterr().err

    def test_merge_of_empty_dir_errors_cleanly(self, capsys, tmp_path):
        assert main(["merge", str(tmp_path)]) == 2
        assert "shards" in capsys.readouterr().err

    def test_shard_then_merge_roundtrip(self, capsys, tmp_path):
        path = self._spec_file(tmp_path)
        run_dir = tmp_path / "run"
        for shard in ("2/2", "1/2"):
            assert (
                main(
                    [
                        "scenarios", str(path),
                        "--shard", shard, "--out", str(run_dir),
                    ]
                )
                == 0
            )
            assert f"shard {shard}" in capsys.readouterr().out
        assert main(["merge", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "merged 2 scenarios" in out and "summary.json" in out
        summary = json.loads((run_dir / "summary.json").read_text())
        assert summary["count"] == 2
        assert {row["name"] for row in summary["scenarios"]} == {
            "t/campaign=weight",
            "t/campaign=quantized",
        }


class TestReportCommand:
    def _spec_file(self, tmp_path):
        spec = {
            "name": "cli-report",
            "defaults": {
                "model": "lenet5",
                "trials": 1,
                "eval_images": 16,
                "batch_size": 16,
                "rates": [1e-5, 1e-4],
            },
            "scenarios": [{"name": "t"}],
        }
        path = tmp_path / "tiny.json"
        path.write_text(json.dumps(spec))
        return path

    def test_report_renders_run_directory(self, capsys, tmp_path):
        from repro.results import REPORT_SECTIONS

        path = self._spec_file(tmp_path)
        out_dir = tmp_path / "out"
        assert main(["scenarios", str(path), "--out", str(out_dir)]) == 0
        capsys.readouterr()
        assert main(["report", str(out_dir)]) == 0
        out = capsys.readouterr().out
        report = out_dir / "report.html"
        assert str(report) in out
        html = report.read_text()
        for section in REPORT_SECTIONS:
            assert f'<section id="{section}">' in html

    def test_report_honours_out_and_bench(self, capsys, tmp_path):
        path = self._spec_file(tmp_path)
        out_dir = tmp_path / "out"
        assert main(["scenarios", str(path), "--out", str(out_dir)]) == 0
        bench = tmp_path / "bench"
        bench.mkdir()
        (bench / "BENCH_x.json").write_text(
            json.dumps(
                {
                    "benchmark": "x",
                    "history": [{"sha": "abc123", "wall_seconds": 1.5}],
                }
            )
        )
        target = tmp_path / "page.html"
        capsys.readouterr()
        assert (
            main(
                [
                    "report", str(out_dir),
                    "--out", str(target), "--bench", str(bench),
                ]
            )
            == 0
        )
        html = target.read_text()
        assert "abc123" in html and "wall_seconds" in html

    def test_report_without_run_errors_cleanly(self, capsys, tmp_path):
        assert main(["report", str(tmp_path)]) == 2
        assert "summary.json" in capsys.readouterr().err

    def test_no_store_flag_skips_store(self, tmp_path):
        from repro.results import store_path

        path = self._spec_file(tmp_path)
        out_dir = tmp_path / "out"
        assert (
            main(
                ["scenarios", str(path), "--out", str(out_dir), "--no-store"]
            )
            == 0
        )
        assert not store_path(out_dir).exists()
        assert (out_dir / "summary.json").is_file()
