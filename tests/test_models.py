"""Tests for the model architectures and registry."""

import numpy as np
import pytest

from repro import nn
from repro.models import (
    MODEL_BUILDERS,
    CifarAlexNet,
    CifarVGG16,
    LeNet5,
    MLP,
    build_model,
    computational_layers,
    layer_names,
)


class TestAlexNet:
    def test_layer_structure_matches_paper(self):
        """Paper Section V-A: AlexNet has 5 CONV and 3 FC layers."""
        model = CifarAlexNet(width_mult=0.25, seed=0)
        names = layer_names(model)
        assert names == [
            "CONV-1", "CONV-2", "CONV-3", "CONV-4", "CONV-5",
            "FC-1", "FC-2", "FC-3",
        ]

    def test_forward_shape(self):
        model = CifarAlexNet(width_mult=0.25, seed=0)
        model.eval()
        out = model(np.zeros((2, 3, 32, 32), dtype=np.float32))
        assert out.shape == (2, 10)

    def test_width_mult_scales_parameters(self):
        small = CifarAlexNet(width_mult=0.125, seed=0).num_parameters()
        large = CifarAlexNet(width_mult=0.5, seed=0).num_parameters()
        assert large > 4 * small

    def test_deterministic_construction(self):
        a = CifarAlexNet(width_mult=0.25, seed=3)
        b = CifarAlexNet(width_mult=0.25, seed=3)
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_too_small_image_rejected(self):
        with pytest.raises(ValueError):
            CifarAlexNet(image_size=4)


class TestVGG16:
    def test_layer_structure_matches_paper(self):
        """Paper Section V-A: base VGG-16 has 13 CONV and 1 FC layer."""
        model = CifarVGG16(width_mult=0.125, seed=0)
        names = layer_names(model)
        conv = [n for n in names if n.startswith("CONV")]
        fc = [n for n in names if n.startswith("FC")]
        assert len(conv) == 13
        assert fc == ["FC-1"]

    def test_forward_shape(self):
        model = CifarVGG16(width_mult=0.125, seed=0)
        model.eval()
        out = model(np.zeros((2, 3, 32, 32), dtype=np.float32))
        assert out.shape == (2, 10)

    def test_batchnorm_optional(self):
        with_bn = CifarVGG16(width_mult=0.125, batch_norm=True, seed=0)
        without_bn = CifarVGG16(width_mult=0.125, batch_norm=False, seed=0)
        bn_count = sum(isinstance(m, nn.BatchNorm2d) for m in with_bn.modules())
        assert bn_count == 13
        assert not any(isinstance(m, nn.BatchNorm2d) for m in without_bn.modules())

    def test_trainable_forward_backward(self):
        model = CifarVGG16(width_mult=0.0625, seed=0)
        model.train()
        x = np.random.default_rng(0).random((4, 3, 32, 32)).astype(np.float32)
        out = model(x)
        grad = model.backward(np.ones_like(out))
        assert grad.shape == x.shape


class TestLeNet:
    def test_structure(self):
        model = LeNet5(seed=0)
        names = layer_names(model)
        assert names == ["CONV-1", "CONV-2", "FC-1", "FC-2", "FC-3"]

    def test_forward_shape(self):
        model = LeNet5(seed=0)
        model.eval()
        assert model(np.zeros((1, 3, 32, 32), dtype=np.float32)).shape == (1, 10)


class TestMLP:
    def test_structure_and_shapes(self):
        model = MLP(16, 4, hidden=(8, 8), seed=0)
        model.eval()
        out = model(np.zeros((3, 1, 4, 4), dtype=np.float32))
        assert out.shape == (3, 4)
        assert layer_names(model) == ["FC-1", "FC-2", "FC-3"]

    def test_invalid_hidden_rejected(self):
        with pytest.raises(ValueError):
            MLP(16, 4, hidden=(0,))


class TestRegistry:
    def test_all_builders_construct(self):
        for name in MODEL_BUILDERS:
            model = build_model(name, width_mult=0.125, seed=0)
            assert isinstance(model, nn.Module)

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown model"):
            build_model("resnet50")

    def test_computational_layers_returns_modules(self):
        model = LeNet5(seed=0)
        pairs = computational_layers(model)
        assert all(isinstance(m, (nn.Conv2d, nn.Linear)) for _, m in pairs)
        assert [n for n, _ in pairs] == layer_names(model)


class TestModelSummary:
    def test_summary_contents(self):
        from repro.models import model_summary

        text = model_summary(LeNet5(seed=0))
        assert "CONV-1" in text and "FC-3" in text
        assert "Conv2d" in text and "Linear" in text
        assert "total" in text

    def test_summary_totals_match(self):
        from repro.models import model_summary

        model = LeNet5(seed=0)
        text = model_summary(model)
        assert str(model.num_parameters()) in text
