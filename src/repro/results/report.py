"""``repro report``: static, self-contained run diagnostics.

:func:`render_report` turns one scenario run directory (the output of
``repro scenarios`` / ``repro merge``) into a single deterministic HTML
file — resilience-curve figures as inline SVG, per-scenario drill-down
tables, a quarantine summary sourced from the per-cell store, and
optional cross-run diffs against the per-SHA ``BENCH_*.json`` benchmark
histories.  No JavaScript, no external assets, no plotting
dependencies: the page is a pure function of the run directory's bytes,
so rendering the same run twice — or rendering an N-way sharded merge
vs the unsharded run — produces byte-identical HTML, which the golden
tests assert.

The section list is fixed: :data:`REPORT_SECTIONS` is the source of
truth, mirrored by the report-sections table in ``docs/RESULTS.md``
and enforced both directions by ``tests/test_docs_consistency.py``.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from html import escape
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.analysis.reporting import (
    CATEGORICAL_COLORS,
    RawHTML,
    format_rate,
    html_table,
    svg_resilience_figure,
)
from repro.results.store import CellStore, read_store, store_path

__all__ = [
    "REPORT_FILENAME",
    "REPORT_SECTIONS",
    "load_run",
    "render_report",
    "write_report",
]

REPORT_FILENAME = "report.html"

# Section id -> what it shows.  Every render emits exactly these
# sections in this order; docs/RESULTS.md mirrors the table and the
# docs-consistency tests enforce the match both directions.
REPORT_SECTIONS = {
    "overview": "run identity, outcome tallies and the scenario matrix",
    "curves": "combined resilience-curve figure (mean accuracy vs fault rate)",
    "scenarios": "per-scenario drill-down: figure plus per-rate statistics",
    "quarantine": "quarantined cells with failure reason and attempts",
    "history": "cross-run diffs against the per-SHA BENCH_*.json histories",
}

# At most this many series share the combined figure; beyond it the
# figure is omitted (colors are assigned in fixed order, never cycled)
# and the per-scenario figures carry the curves instead.
MAX_COMBINED_SERIES = len(CATEGORICAL_COLORS)

_CSS = """
body { font: 14px/1.5 system-ui, sans-serif; color: #1a1a24;
       margin: 2rem auto; max-width: 64rem; padding: 0 1rem;
       background: #ffffff; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.15rem; margin-top: 2rem; }
h3 { font-size: 1rem; margin-top: 1.5rem; }
p.meta, caption { color: #6b6b76; text-align: left; }
table { border-collapse: collapse; margin: 0.75rem 0; }
th, td { border: 1px solid #e3e3e8; padding: 0.25rem 0.6rem; }
th { background: #f6f6f8; font-weight: 600; text-align: left; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
svg { max-width: 100%; height: auto; }
svg .grid { stroke: #e3e3e8; stroke-width: 1; }
svg .tick, svg .axis-label { font: 11px system-ui, sans-serif;
                             fill: #6b6b76; }
svg .fig-title { font: 600 13px system-ui, sans-serif; fill: #1a1a24; }
svg .clean-line { stroke: #6b6b76; stroke-width: 1;
                  stroke-dasharray: 4 3; }
ul.legend { list-style: none; padding: 0; margin: 0.25rem 0; }
ul.legend li { display: inline-block; margin-right: 1.25rem; }
ul.legend .swatch { display: inline-block; width: 0.75rem;
                    height: 0.75rem; border-radius: 2px;
                    margin-right: 0.4rem; vertical-align: -0.05rem; }
""".strip()


@dataclass(frozen=True)
class RunData:
    """One loaded run directory: summary, scenario payloads, store."""

    run_dir: Path
    summary: Mapping[str, Any]
    # Parallel to summary["scenarios"]: (summary row, scenario payload,
    # file stem) per scenario, in summary (= spec) order.
    scenarios: "tuple[tuple[Mapping, Mapping, str], ...]"
    store: "CellStore | None"


def load_run(run_dir: "str | Path") -> RunData:
    """Load ``summary.json``, every scenario payload and the cell store.

    The store is optional (``--no-store`` runs, historical runs): the
    report falls back to the JSON payloads for quarantine data when
    ``store/cells.rcs`` is absent.
    """
    run_dir = Path(run_dir)
    summary_file = run_dir / "summary.json"
    if not summary_file.is_file():
        raise FileNotFoundError(
            f"{summary_file} not found; 'repro report' needs a finished "
            "scenario run directory (run 'repro merge' first for shards)"
        )
    summary = json.loads(summary_file.read_text())
    scenarios = []
    for row in summary.get("scenarios", ()):
        payload = json.loads((run_dir / row["file"]).read_text())
        scenarios.append((row, payload, Path(row["file"]).stem))
    store = None
    if store_path(run_dir).is_file():
        store = read_store(run_dir)
    return RunData(
        run_dir=run_dir,
        summary=summary,
        scenarios=tuple(scenarios),
        store=store,
    )


def _finite(values: "Sequence[float]") -> "list[float]":
    return [float(v) for v in values if not math.isnan(float(v))]


def _failed_cells(row: Mapping[str, Any]) -> "list[Mapping[str, Any]]":
    return list(row.get("failed_cells", ()))


def _scenario_color(index: int, total: int) -> str:
    # Color follows the scenario's fixed summary position; once the
    # combined figure folds (> MAX_COMBINED_SERIES), single-series
    # figures carry identity in their titles and share one color.
    if total <= MAX_COMBINED_SERIES:
        return CATEGORICAL_COLORS[index]
    return CATEGORICAL_COLORS[0]


def _series(payload: Mapping[str, Any], label: str, color: str) -> dict:
    rates = [float(r) for r in payload["fault_rates"]]
    grid = payload["accuracies"]
    low, high = [], []
    for rate_row in grid:
        finite = _finite(rate_row)
        low.append(min(finite) if finite else float("nan"))
        high.append(max(finite) if finite else float("nan"))
    band_ok = all(not math.isnan(v) for v in low + high)
    series = {
        "label": label,
        "rates": rates,
        "mean": [float(v) for v in payload["mean_accuracies"]],
        "color": color,
    }
    if band_ok:
        series["low"] = low
        series["high"] = high
    return series


def _section_overview(run: RunData) -> str:
    parts = ['<section id="overview"><h2>Overview</h2>']
    suite = run.summary.get("suite", "scenarios")
    count = int(run.summary.get("count", len(run.scenarios)))
    parts.append(
        f"<p>Suite <strong>{escape(str(suite))}</strong> · "
        f"{count} scenario{'s' if count != 1 else ''}.</p>"
    )
    if run.store is not None:
        counts = run.store.outcome_counts()
        parts.append(
            "<p class=\"meta\">Per-cell store: "
            + ", ".join(
                f"{counts[outcome]} {outcome}" for outcome in counts
            )
            + f" ({len(run.store)} records).</p>"
        )
    else:
        parts.append(
            '<p class="meta">No per-cell store in this run directory '
            "(see docs/RESULTS.md); quarantine data falls back to the "
            "scenario JSON.</p>"
        )
    if not run.scenarios:
        parts.append("<p>No scenarios were recorded.</p></section>")
        return "".join(parts)
    rows = []
    for row, payload, stem in run.scenarios:
        rows.append(
            [
                RawHTML(
                    f'<a href="#s-{escape(stem)}">{escape(row["name"])}</a>'
                ),
                str(row["model"]),
                str(row["campaign"]),
                str(row["variant"]),
                str(row["fault_model"].get("name", "")),
                float(row["clean_accuracy"]),
                float(row["auc"]),
                len(_failed_cells(row)),
            ]
        )
    parts.append(
        html_table(
            [
                "scenario", "model", "campaign", "variant", "fault model",
                "clean", "AUC", "quarantined",
            ],
            rows,
        )
    )
    parts.append("</section>")
    return "".join(parts)


def _section_curves(run: RunData) -> str:
    parts = ['<section id="curves"><h2>Resilience curves</h2>']
    if not run.scenarios:
        parts.append("<p>No scenarios to plot.</p></section>")
        return "".join(parts)
    total = len(run.scenarios)
    if total > MAX_COMBINED_SERIES:
        parts.append(
            f"<p>{total} scenarios exceed the {MAX_COMBINED_SERIES}-series "
            "limit of the combined figure; see the per-scenario figures "
            "below.</p></section>"
        )
        return "".join(parts)
    series = [
        _series(payload, row["name"], _scenario_color(index, total))
        for index, (row, payload, _) in enumerate(run.scenarios)
    ]
    # The combined figure shows mean lines only; min-max bands live in
    # the per-scenario figures where they cannot overlap each other.
    for entry in series:
        entry.pop("low", None)
        entry.pop("high", None)
    parts.append(svg_resilience_figure(series, title="mean accuracy vs fault rate"))
    if total >= 2:
        parts.append("<ul class=\"legend\">")
        for entry in series:
            parts.append(
                f'<li><span class="swatch" style="background:'
                f'{entry["color"]}"></span>{escape(str(entry["label"]))}</li>'
            )
        parts.append("</ul>")
    parts.append("</section>")
    return "".join(parts)


def _scenario_rate_table(row: Mapping, payload: Mapping) -> str:
    rates = [float(r) for r in payload["fault_rates"]]
    failed_by_rate: "dict[int, int]" = {}
    for cell in _failed_cells(row):
        index = int(cell["rate_index"])
        failed_by_rate[index] = failed_by_rate.get(index, 0) + 1
    adaptive = payload.get("adaptive")
    if adaptive is not None:
        table_rows = []
        trials = len(payload["accuracies"][0]) if rates else 0
        for index, rate in enumerate(rates):
            executed = int(adaptive["executed"][index])
            failed = failed_by_rate.get(index, 0)
            skipped = 0 if failed else max(0, trials - executed)
            table_rows.append(
                [
                    format_rate(rate),
                    float(adaptive["estimates"][index]),
                    float(adaptive["ci_halfwidths"][index]),
                    executed,
                    skipped,
                    failed,
                ]
            )
        return html_table(
            ["fault rate", "estimate", "halfwidth", "executed", "skipped", "failed"],
            table_rows,
        )
    table_rows = []
    for index, rate in enumerate(rates):
        finite = _finite(payload["accuracies"][index])
        table_rows.append(
            [
                format_rate(rate),
                float(payload["mean_accuracies"][index]),
                min(finite) if finite else float("nan"),
                max(finite) if finite else float("nan"),
                len(finite),
                failed_by_rate.get(index, 0),
            ]
        )
    return html_table(
        ["fault rate", "mean", "min", "max", "ok", "failed"], table_rows
    )


def _section_scenarios(run: RunData) -> str:
    parts = ['<section id="scenarios"><h2>Scenarios</h2>']
    if not run.scenarios:
        parts.append("<p>No scenarios were recorded.</p>")
    total = len(run.scenarios)
    for index, (row, payload, stem) in enumerate(run.scenarios):
        parts.append(f'<h3 id="s-{escape(stem)}">{escape(row["name"])}</h3>')
        spec = payload.get("spec", {})
        mode = spec.get("mode", "exact")
        parts.append(
            f'<p class="meta">model {escape(str(row["model"]))} · '
            f'{escape(str(row["campaign"]))} campaign · variant '
            f'{escape(str(row["variant"]))} · {escape(str(mode))} mode · '
            f'clean accuracy {float(row["clean_accuracy"]):.4f} · '
            f'AUC {float(row["auc"]):.4f}</p>'
        )
        if payload["fault_rates"]:
            parts.append(
                svg_resilience_figure(
                    [
                        _series(
                            payload, row["name"], _scenario_color(index, total)
                        )
                    ],
                    clean_accuracy=float(row["clean_accuracy"]),
                    width=560,
                    height=260,
                )
            )
        parts.append(_scenario_rate_table(row, payload))
    parts.append("</section>")
    return "".join(parts)


def _section_quarantine(run: RunData) -> str:
    parts = ['<section id="quarantine"><h2>Quarantine</h2>']
    rows: "list[list[object]]" = []
    if run.store is not None:
        for record in run.store.select(outcome="failed"):
            rows.append(
                [
                    record.scenario,
                    format_rate(record.fault_rate),
                    record.trial,
                    record.reason,
                    record.attempts,
                    record.error,
                ]
            )
    else:
        for row, payload, _stem in run.scenarios:
            for cell in _failed_cells(row):
                rows.append(
                    [
                        str(row["name"]),
                        format_rate(
                            float(
                                payload["fault_rates"][int(cell["rate_index"])]
                            )
                        ),
                        int(cell["trial"]),
                        str(cell["reason"]),
                        int(cell["attempts"]),
                        str(cell["error"]),
                    ]
                )
    if not rows:
        parts.append("<p>No quarantined cells.</p></section>")
        return "".join(parts)
    parts.append(
        html_table(
            ["scenario", "fault rate", "trial", "reason", "attempts", "error"],
            rows,
        )
    )
    parts.append("</section>")
    return "".join(parts)


def _numeric_keys(entry: Mapping[str, Any]) -> "list[str]":
    return sorted(
        key
        for key, value in entry.items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    )


def _section_history(bench_dir: "str | Path | None") -> str:
    parts = ['<section id="history"><h2>Benchmark history</h2>']
    if bench_dir is None:
        parts.append(
            "<p>No benchmark directory supplied (pass "
            "<code>--bench benchmarks/results</code> to diff against the "
            "per-SHA histories).</p></section>"
        )
        return "".join(parts)
    bench_dir = Path(bench_dir)
    files = sorted(bench_dir.glob("BENCH_*.json"))
    if not files:
        parts.append(
            f"<p>No BENCH_*.json histories under "
            f"{escape(str(bench_dir))}.</p></section>"
        )
        return "".join(parts)
    for path in files:
        payload = json.loads(path.read_text())
        name = payload.get("benchmark", path.stem)
        history = list(payload.get("history", ()))
        parts.append(f"<h3>{escape(str(name))}</h3>")
        if not history:
            parts.append("<p>Empty history.</p>")
            continue
        keys = _numeric_keys(history[-1])
        rows: "list[list[object]]" = []
        for entry in history[-8:]:
            sha = str(entry.get("sha", ""))[:10]
            rows.append(
                [sha]
                + [
                    float(entry[key]) if key in entry else float("nan")
                    for key in keys
                ]
            )
        if len(history) >= 2:
            prev, last = history[-2], history[-1]
            delta_cells: "list[object]" = ["Δ vs prev"]
            for key in keys:
                if key in prev and key in last and float(prev[key]) != 0:
                    change = float(last[key]) - float(prev[key])
                    pct = 100.0 * change / float(prev[key])
                    delta_cells.append(f"{change:+.4g} ({pct:+.1f}%)")
                else:
                    delta_cells.append("—")
            rows.append(delta_cells)
        parts.append(
            html_table(
                ["sha"] + keys,
                rows,
                caption=f"last {min(len(history), 8)} of "
                f"{len(history)} entries",
            )
        )
    parts.append("</section>")
    return "".join(parts)


def render_report(
    run_dir: "str | Path", bench_dir: "str | Path | None" = None
) -> str:
    """The full report page as a string (deterministic bytes)."""
    run = load_run(run_dir)
    suite = str(run.summary.get("suite", "scenarios"))
    sections = {
        "overview": _section_overview(run),
        "curves": _section_curves(run),
        "scenarios": _section_scenarios(run),
        "quarantine": _section_quarantine(run),
        "history": _section_history(bench_dir),
    }
    assert list(sections) == list(REPORT_SECTIONS), (
        "render_report sections and REPORT_SECTIONS must stay in lockstep"
    )
    body = "".join(sections[name] for name in REPORT_SECTIONS)
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">'
        f"<title>repro report — {escape(suite)}</title>"
        f"<style>{_CSS}</style></head>\n"
        f"<body><h1>repro report — {escape(suite)}</h1>{body}</body></html>\n"
    )


def write_report(
    run_dir: "str | Path",
    out: "str | Path | None" = None,
    bench_dir: "str | Path | None" = None,
) -> Path:
    """Render and write the report; returns the output path.

    ``out`` defaults to ``<run_dir>/report.html``.  The write is plain
    (not atomic): the report is a derived artifact, regenerated at will
    from the run directory.
    """
    run_dir = Path(run_dir)
    target = Path(out) if out is not None else run_dir / REPORT_FILENAME
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(render_report(run_dir, bench_dir=bench_dir))
    return target
