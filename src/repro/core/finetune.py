"""Threshold fine-tuning (methodology Step 3, paper Algorithm 1).

The AUC-vs-threshold curve of a layer is bell-shaped with its peak below
the profiled ``ACT_max`` (paper Fig. 5b), so an interval search finds the
peak with few AUC evaluations: split the search interval into three equal
sub-intervals, evaluate the AUC at the four boundaries, keep the
sub-interval(s) around the best boundary, and repeat until ``N``
iterations — or until the adjacent-AUC deltas fall below ``delta`` once at
least ``M`` iterations have run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro import nn
from repro.core.campaign import CampaignConfig, FaultInjectionCampaign, FaultSampler
from repro.core.executor import CampaignExecutor, WeightFaultCellTask
from repro.core.swap import get_thresholds, set_thresholds
from repro.hw.memory import WeightMemory
from repro.utils.shm import pack_object
from repro.utils.validation import check_non_negative, check_positive

__all__ = [
    "FineTuneConfig",
    "IterationTrace",
    "FineTuneResult",
    "fine_tune_threshold",
    "make_layer_auc_evaluator",
    "LayerAUCEvaluator",
    "ThresholdFineTuner",
]

AUCEvaluator = Callable[[float], float]


@dataclass(frozen=True)
class FineTuneConfig:
    """Algorithm 1 stopping parameters."""

    max_iterations: int = 5  # N
    min_iterations: int = 2  # M
    tolerance: float = 0.01  # delta

    def __post_init__(self) -> None:
        check_positive("max_iterations", self.max_iterations)
        check_positive("min_iterations", self.min_iterations)
        check_non_negative("tolerance", self.tolerance)
        if self.min_iterations > self.max_iterations:
            raise ValueError(
                f"min_iterations ({self.min_iterations}) must not exceed "
                f"max_iterations ({self.max_iterations})"
            )


@dataclass(frozen=True)
class IterationTrace:
    """One interval-search iteration (paper Fig. 6 panels)."""

    iteration: int
    boundaries: tuple[float, float, float, float]
    auc_values: tuple[float, float, float, float]
    best_index: int  # 0-based index of the best boundary
    interval: tuple[float, float]  # the selected next search interval


@dataclass
class FineTuneResult:
    """Outcome of fine-tuning one layer's threshold."""

    layer_name: str
    threshold: float
    auc: float
    act_max: float
    trace: list[IterationTrace] = field(default_factory=list)
    evaluations: int = 0
    converged_early: bool = False

    @property
    def iterations(self) -> int:
        """Number of interval-search iterations executed."""
        return len(self.trace)


def _boundaries(low: float, high: float) -> tuple[float, float, float, float]:
    """Algorithm 1's AUC_Calculation boundary placement: T1..T4."""
    step = (high - low) / 3.0
    return (low, low + step, low + 2.0 * step, high)


def fine_tune_threshold(
    evaluator: AUCEvaluator,
    act_max: float,
    config: "FineTuneConfig | None" = None,
    layer_name: str = "",
    lower_bound: float = 0.0,
) -> FineTuneResult:
    """Run Algorithm 1 over ``[lower_bound, act_max]``.

    ``evaluator`` maps a candidate threshold to its AUC.  Evaluations are
    memoised: interval ends recur between iterations, and Algorithm 1's
    ``Interval_Search`` reuses boundary AUCs freely.

    An evaluator with a ``close`` method (the warm-pool
    :class:`LayerAUCEvaluator`) is closed when the search finishes, so
    its worker pool lives exactly as long as one Algorithm-1 run —
    shared by every iteration, built at most once.
    """
    if act_max <= lower_bound:
        raise ValueError(
            f"act_max ({act_max}) must exceed lower_bound ({lower_bound})"
        )
    config = config if config is not None else FineTuneConfig()
    try:
        return _fine_tune_threshold(
            evaluator, act_max, config, layer_name, lower_bound
        )
    finally:
        close = getattr(evaluator, "close", None)
        if callable(close):
            close()


def _fine_tune_threshold(
    evaluator: AUCEvaluator,
    act_max: float,
    config: FineTuneConfig,
    layer_name: str,
    lower_bound: float,
) -> FineTuneResult:
    """The Algorithm-1 interval search proper (evaluator lifecycle handled
    by :func:`fine_tune_threshold`)."""

    cache: dict[float, float] = {}

    def evaluate_all(thresholds: Sequence[float]) -> tuple[float, ...]:
        """AUCs for all ``thresholds``, memoised; un-cached ones may be
        evaluated together through the evaluator's batch entry point
        (one shared worker pool for all boundary campaigns)."""
        keys = [float(np.float32(t)) for t in thresholds]  # stable keys
        missing = [k for k in dict.fromkeys(keys) if k not in cache]
        if len(missing) > 1 and hasattr(evaluator, "evaluate_many"):
            values = evaluator.evaluate_many([max(k, 1e-12) for k in missing])
            cache.update(zip(missing, (float(v) for v in values)))
        else:
            for key in missing:
                cache[key] = float(evaluator(max(key, 1e-12)))
        return tuple(cache[key] for key in keys)

    low, high = float(lower_bound), float(act_max)
    result = FineTuneResult(
        layer_name=layer_name, threshold=high, auc=float("-inf"), act_max=float(act_max)
    )

    for counter in range(1, config.max_iterations + 1):
        bounds = _boundaries(low, high)
        aucs = evaluate_all(bounds)
        best = int(np.argmax(aucs))

        if best == 0:
            interval = (bounds[0], bounds[1])
        elif best == 3:
            interval = (bounds[2], bounds[3])
        else:
            interval = (bounds[best - 1], bounds[best + 1])

        result.trace.append(
            IterationTrace(
                iteration=counter,
                boundaries=bounds,
                auc_values=aucs,
                best_index=best,
                interval=interval,
            )
        )
        # Keep the best threshold seen over *all* evaluations, not just the
        # final iteration's boundaries: the interval recursion re-thirds the
        # selected region, so an interior peak boundary from iteration k is
        # generally not a boundary of iteration k+1 and would otherwise be
        # lost.  (Algorithm 1 in the paper returns the last iteration's T;
        # keeping the global argmax is a strict improvement.)
        if float(aucs[best]) > result.auc:
            # Floor at a tiny positive value: the T1 = 0 boundary means
            # "clip everything", which clipped activations express as an
            # infinitesimal (but valid) threshold.
            result.threshold = max(float(bounds[best]), 1e-12)
            result.auc = float(aucs[best])
        low, high = interval

        deltas = [abs(aucs[i + 1] - aucs[i]) for i in range(3)]
        if max(deltas) <= config.tolerance and counter >= config.min_iterations:
            result.converged_early = True
            break

    result.evaluations = len(cache)
    return result


class LayerAUCEvaluator:
    """The AUC evaluator Algorithm 1 calls for one layer.

    Calling it sets the layer's clipping threshold, runs a full campaign
    (same seed => common random numbers across thresholds) and returns
    the curve's AUC.  ``memory`` controls the fault scope: pass a
    layer-scoped memory for the paper's per-layer analysis (Fig. 5) or a
    whole-network memory to tune against network-wide faults.

    :meth:`evaluate_many` evaluates several candidate thresholds at once:
    with ``workers > 1`` it snapshots the model at each threshold and
    submits one campaign per threshold into a *single shared worker
    pool* (Algorithm 1's boundary evaluations fan out together instead
    of spinning up a pool per boundary).  Both entry points are
    bit-deterministic, so Algorithm 1's search trajectory is identical
    at any worker count and batch size.

    The evaluator owns one *warm* :class:`CampaignExecutor`: the pool is
    built on the first parallel evaluation and reused by every later
    iteration of Algorithm 1 (call :meth:`close` when tuning ends —
    :func:`fine_tune_threshold` and :class:`ThresholdFineTuner` do).
    Each threshold's snapshot is serialized exactly once: the packed
    unit both materializes the parent-side copy (whose clean accuracy
    anchors the AUC) and ships to the workers via the executor's
    pre-packed payload path, with its weight tensors mapped zero-copy
    from the shared-memory tensor plane.
    """

    def __init__(
        self,
        model: nn.Module,
        layer_name: str,
        memory: WeightMemory,
        images: np.ndarray,
        labels: np.ndarray,
        campaign_config: CampaignConfig,
        sampler: "FaultSampler | None" = None,
        include_zero_rate: bool = True,
        workers: int = 1,
    ):
        self.model = model
        self.layer_name = layer_name
        self.memory = memory
        self.images = np.asarray(images, dtype=np.float32)
        self.labels = np.asarray(labels, dtype=np.int64)
        self.campaign_config = campaign_config
        self.sampler = sampler
        self.include_zero_rate = include_zero_rate
        self.workers = workers
        self._campaign = FaultInjectionCampaign(
            model, memory, self.images, self.labels, campaign_config
        )
        self._executor: "CampaignExecutor | None" = None

    def _warm_executor(self) -> CampaignExecutor:
        """The evaluator's persistent executor (pool built on first use)."""
        if self._executor is None:
            self._executor = CampaignExecutor(
                workers=self.workers, persistent=True
            )
        return self._executor

    def close(self) -> None:
        """Shut down the warm worker pool, if one was started (idempotent)."""
        if self._executor is not None:
            executor, self._executor = self._executor, None
            executor.close()

    def __call__(self, threshold: float) -> float:
        set_thresholds(self.model, {self.layer_name: threshold})
        self._campaign.invalidate_clean_accuracy()
        if self.workers > 1:
            curve = self._warm_executor().run(
                self._campaign,
                sampler=self.sampler,
                label=f"{self.layer_name}@T={threshold:g}",
            )
        else:
            curve = self._campaign.run(
                sampler=self.sampler,
                label=f"{self.layer_name}@T={threshold:g}",
                workers=1,
            )
        return curve.auc(include_zero_rate=self.include_zero_rate)

    def evaluate_many(self, thresholds: Sequence[float]) -> list[float]:
        """AUCs for several thresholds, one campaign each, one pool total.

        Each threshold gets its own bit-exact ``(model, memory)``
        snapshot — one :func:`~repro.utils.shm.pack_object` of the whole
        cell task, whose unit serves double duty:
        :meth:`~repro.utils.shm.PackedUnit.unpack_copy` materializes the
        detached parent-side copy (preserving the memory's aliasing into
        the copy's parameters), and the same unit ships to the warm pool
        through ``run_tasks(payloads=...)`` — its weight tensors laid
        out in the shared-memory tensor plane, which workers map as
        zero-copy read-only views.  No model snapshot is ever serialized
        twice.
        """
        if self.workers == 1 or len(thresholds) < 2:
            return [self(threshold) for threshold in thresholds]
        initial = get_thresholds(self.model)[self.layer_name]
        tasks = []
        units = []
        try:
            for threshold in thresholds:
                set_thresholds(self.model, {self.layer_name: threshold})
                unit = pack_object(
                    WeightFaultCellTask(
                        self.model, self.memory, self.images, self.labels,
                        config=self.campaign_config, sampler=self.sampler,
                    )
                )
                task = unit.unpack_copy()
                task.label = f"{self.layer_name}@T={threshold:g}"
                # The unpack round-trip duplicated the eval arrays; the
                # parent-side copy only needs them for the clean-accuracy
                # evaluation, so share the originals (bit-equal) instead
                # of holding one private copy per threshold.
                task.images = self.images
                task.labels = self.labels
                units.append(unit)
                tasks.append(task)
        finally:
            set_thresholds(self.model, {self.layer_name: initial})
        curves = self._warm_executor().run_tasks(tasks, payloads=units)
        return [
            curve.auc(include_zero_rate=self.include_zero_rate) for curve in curves
        ]


def make_layer_auc_evaluator(
    model: nn.Module,
    layer_name: str,
    memory: WeightMemory,
    images: np.ndarray,
    labels: np.ndarray,
    campaign_config: CampaignConfig,
    sampler: "FaultSampler | None" = None,
    include_zero_rate: bool = True,
    workers: int = 1,
) -> AUCEvaluator:
    """Build the :class:`LayerAUCEvaluator` Algorithm 1 calls for one layer."""
    return LayerAUCEvaluator(
        model,
        layer_name,
        memory,
        images,
        labels,
        campaign_config,
        sampler=sampler,
        include_zero_rate=include_zero_rate,
        workers=workers,
    )


class ThresholdFineTuner:
    """Step 3 driver: fine-tune every clipped layer of a model.

    Per the paper, each layer is tuned starting from the Step-2 network
    (all layers initialised at their ``ACT_max``); the tuned thresholds
    are applied together at the end.
    """

    def __init__(
        self,
        model: nn.Module,
        memory_factory: Callable[[str], WeightMemory],
        images: np.ndarray,
        labels: np.ndarray,
        campaign_config: CampaignConfig,
        finetune_config: "FineTuneConfig | None" = None,
        sampler: "FaultSampler | None" = None,
        workers: int = 1,
    ):
        self.model = model
        self.memory_factory = memory_factory
        self.images = np.asarray(images, dtype=np.float32)
        self.labels = np.asarray(labels, dtype=np.int64)
        self.campaign_config = campaign_config
        self.finetune_config = (
            finetune_config if finetune_config is not None else FineTuneConfig()
        )
        self.sampler = sampler
        self.workers = workers

    def tune_layer(self, layer_name: str, act_max: float) -> FineTuneResult:
        """Fine-tune one layer, restoring its initial threshold afterwards."""
        initial = get_thresholds(self.model)[layer_name]
        evaluator = make_layer_auc_evaluator(
            self.model,
            layer_name,
            self.memory_factory(layer_name),
            self.images,
            self.labels,
            self.campaign_config,
            sampler=self.sampler,
            workers=self.workers,
        )
        try:
            return fine_tune_threshold(
                evaluator,
                act_max=act_max,
                config=self.finetune_config,
                layer_name=layer_name,
            )
        finally:
            evaluator.close()
            set_thresholds(self.model, {layer_name: initial})

    def tune_all(self, act_max: Mapping[str, float]) -> dict[str, FineTuneResult]:
        """Fine-tune every layer in ``act_max`` and apply the results."""
        results: dict[str, FineTuneResult] = {}
        for layer_name, layer_act_max in act_max.items():
            results[layer_name] = self.tune_layer(layer_name, float(layer_act_max))
        set_thresholds(
            self.model,
            {name: result.threshold for name, result in results.items()},
        )
        return results
