"""Declarative campaign specs: schema, grid expansion, YAML/JSON loading.

A :class:`CampaignSpec` is a complete, serializable description of one
fault-injection scenario — model, dataset slice, fault model +
parameters, mitigation variant, rate grid, trials, seed — that the
compiler (:mod:`repro.scenarios.compile`) lowers onto the existing
:class:`~repro.core.executor.CampaignExecutor` substrate.  A *scenario
file* holds one or many specs plus shared defaults, and any entry may
carry a ``grid:`` block whose listed fields expand to the cross product
of specs (matrix expansion).  ``docs/SCENARIOS.md`` is the authoritative
schema reference; ``tests/test_docs_consistency.py`` keeps it and this
module from drifting apart in either direction.

File format (YAML or JSON — YAML requires the optional PyYAML)::

    name: stuck-at-sweep          # suite name (default: file stem)
    workers: 2                    # suite default, CLI --workers overrides
    defaults:                     # merged under every scenario entry
      model: lenet5
      trials: 5
    scenarios:
      - name: stuckat
        fault_model: {name: stuck_at, value: 0}
      - name: stuckat-matrix
        grid:                     # cross product -> 4 specs
          campaign: [weight, quantized]
          fault_model:
            - {name: stuck_at, value: 0}
            - {name: stuck_at, value: 1}

A bare list is read as the ``scenarios:`` list, and a bare mapping with
a ``name`` (and no ``scenarios`` key) as a single scenario.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.core.campaign import default_fault_rates
from repro.scenarios.faults import FAULT_MODELS, validate_fault_params
from repro.utils.validation import check_positive

__all__ = [
    "CAMPAIGN_KINDS",
    "EXECUTION_MODES",
    "MITIGATION_VARIANTS",
    "REDUNDANCY_VARIANTS",
    "FaultModelSpec",
    "CampaignSpec",
    "ScenarioSuite",
    "expand_entry",
    "parse_suite",
    "load_scenarios",
]

# The three campaign kinds a spec may target, matching the executor cell
# tasks (WeightFaultCellTask / QuantizedCellTask / ActivationFaultCellTask)
# and their checkpoint `kind` fingerprints.
CAMPAIGN_KINDS = ("weight", "quantized", "activation")

# Mitigation variants (repro.experiments.prepare_campaign_variant minus
# "int8", which is a storage model here — `campaign: quantized` — not a
# mitigation).
MITIGATION_VARIANTS = ("unprotected", "ftclipact", "relu6", "ecc", "tmr", "dmr")

# Redundancy schemes are *fault-sampler filters* over the float32 bit
# space: they imply random bit flips and only apply to weight campaigns.
REDUNDANCY_VARIANTS = ("ecc", "tmr", "dmr")

_SPLITS = ("test", "val")

# Execution modes: "exact" runs the full (rates x trials) grid;
# "adaptive" wraps the campaign in sequential stopping
# (repro.core.batched.AdaptiveCampaignTask) — per-rate trial families
# terminate once their accuracy confidence interval is tight enough.
EXECUTION_MODES = ("exact", "adaptive")


def _default_rates() -> tuple[float, ...]:
    """The canonical grid (experiments.paper_fault_rates, import-light)."""
    return tuple(float(r) for r in default_fault_rates(1e-7, 1e-4, 2))


@dataclass(frozen=True)
class FaultModelSpec:
    """The ``fault_model:`` block: a registry name plus its parameters."""

    name: str = "random_bitflip"
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", dict(self.params))
        validate_fault_params(self.name, self.params)

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, **self.params}

    @classmethod
    def from_value(cls, value: Any) -> "FaultModelSpec":
        """Accept ``"stuck_at"`` or ``{"name": "stuck_at", "value": 0}``."""
        if isinstance(value, FaultModelSpec):
            return value
        if isinstance(value, str):
            return cls(name=value)
        if isinstance(value, Mapping):
            payload = dict(value)
            try:
                name = payload.pop("name")
            except KeyError:
                raise ValueError(
                    "fault_model mapping requires a 'name' key; available "
                    f"models: {sorted(FAULT_MODELS)}"
                ) from None
            return cls(name=name, params=payload)
        raise TypeError(
            f"fault_model must be a name or a mapping, got {type(value).__name__}"
        )


@dataclass(frozen=True)
class CampaignSpec:
    """One scenario: everything that determines a campaign run.

    Field-by-field reference (defaults, units, cross-field rules) lives
    in ``docs/SCENARIOS.md``; the consistency test enforces that every
    field here has a row there and vice versa.
    """

    name: str
    model: str = "lenet5"
    campaign: str = "weight"
    variant: str = "unprotected"
    fault_model: FaultModelSpec = field(default_factory=FaultModelSpec)
    rates: tuple[float, ...] = field(default_factory=_default_rates)
    trials: int = 3
    seed: int = 0
    eval_images: int = 128
    split: str = "test"
    batch_size: int = 128
    layers: "tuple[str, ...] | None" = None
    mode: str = "exact"
    ci_halfwidth: float = 0.02
    batch_k: int = 0
    importance: "float | None" = None

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError("scenario name must be a non-empty string")
        from repro.experiments import EXPERIMENT_CONFIGS

        if self.model not in EXPERIMENT_CONFIGS:
            raise ValueError(
                f"unknown model {self.model!r}; available: "
                f"{sorted(EXPERIMENT_CONFIGS)}"
            )
        if self.campaign not in CAMPAIGN_KINDS:
            raise ValueError(
                f"unknown campaign kind {self.campaign!r}; available: "
                f"{list(CAMPAIGN_KINDS)}"
            )
        if self.variant not in MITIGATION_VARIANTS:
            raise ValueError(
                f"unknown mitigation variant {self.variant!r}; available: "
                f"{list(MITIGATION_VARIANTS)}"
            )
        object.__setattr__(
            self, "fault_model", FaultModelSpec.from_value(self.fault_model)
        )
        rates = tuple(float(r) for r in self.rates)
        if not rates:
            raise ValueError("rates must be non-empty")
        if any(r <= 0 for r in rates):
            raise ValueError("rates must be positive (rate 0 is implicit)")
        if any(b <= a for a, b in zip(rates, rates[1:])):
            raise ValueError("rates must be strictly increasing")
        object.__setattr__(self, "rates", rates)
        check_positive("trials", self.trials)
        check_positive("eval_images", self.eval_images)
        check_positive("batch_size", self.batch_size)
        if self.split not in _SPLITS:
            raise ValueError(
                f"split must be one of {list(_SPLITS)}, got {self.split!r}"
            )
        if self.layers is not None:
            if self.campaign != "activation":
                raise ValueError(
                    "layers is only meaningful for activation campaigns"
                )
            object.__setattr__(
                self, "layers", tuple(str(layer) for layer in self.layers)
            )

        if self.mode not in EXECUTION_MODES:
            raise ValueError(
                f"unknown mode {self.mode!r}; available: "
                f"{list(EXECUTION_MODES)}"
            )
        object.__setattr__(self, "ci_halfwidth", float(self.ci_halfwidth))
        if not 0.0 < self.ci_halfwidth <= 0.5:
            raise ValueError(
                "ci_halfwidth must lie in (0, 0.5], got "
                f"{self.ci_halfwidth}"
            )
        if int(self.batch_k) < 0:
            raise ValueError(f"batch_k must be >= 0, got {self.batch_k}")
        object.__setattr__(self, "batch_k", int(self.batch_k))
        if self.importance is not None:
            value = float(self.importance)
            if value <= 0:
                raise ValueError(f"importance boost must be > 0, got {value}")
            object.__setattr__(self, "importance", value)

        # Cross-field rules (documented in docs/SCENARIOS.md).
        info = FAULT_MODELS[self.fault_model.name]
        if self.campaign not in info.campaigns:
            raise ValueError(
                f"fault model {self.fault_model.name!r} does not support "
                f"campaign {self.campaign!r} (supports {list(info.campaigns)})"
            )
        if self.fault_model.name == "targeted_bit":
            # The campaign kind fixes the word width (float32: 32-bit
            # words, int8: 8-bit codes), so an impossible bit position
            # fails here at parse time instead of mid-sweep in a worker.
            from repro.scenarios.faults import resolve_bit_position

            bits_per_word = 8 if self.campaign == "quantized" else 32
            resolve_bit_position(
                self.fault_model.params.get("bit", "sign"), bits_per_word
            )
        if self.mode == "adaptive" and self.campaign == "activation":
            raise ValueError(
                "mode 'adaptive' requires campaign 'weight' or 'quantized' "
                "(activation faults are sampled inside the forward pass, "
                "so their trial families cannot be batched or reweighted)"
            )
        if self.importance is not None:
            if self.mode != "adaptive":
                raise ValueError(
                    "importance sampling requires mode 'adaptive'"
                )
            if self.campaign != "weight":
                raise ValueError(
                    "importance sampling tilts the float32 weight bit "
                    "space; it requires campaign 'weight'"
                )
            if self.fault_model.name != "random_bitflip":
                raise ValueError(
                    "importance sampling reweights the 'random_bitflip' "
                    f"model; it cannot tilt {self.fault_model.name!r}"
                )
            if self.variant in REDUNDANCY_VARIANTS:
                raise ValueError(
                    f"importance sampling bypasses the {self.variant!r} "
                    "protection filter; combine it only with unprotected "
                    "or activation-clipping variants"
                )
        if self.variant in REDUNDANCY_VARIANTS:
            if self.campaign != "weight":
                raise ValueError(
                    f"redundancy variant {self.variant!r} protects the "
                    "float32 weight memory; it requires campaign 'weight'"
                )
            if self.fault_model.name != "random_bitflip":
                raise ValueError(
                    f"redundancy variant {self.variant!r} models protection "
                    "against random bit flips; combine it only with the "
                    "'random_bitflip' fault model"
                )

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict[str, Any]:
        """A JSON/YAML-ready mapping; ``from_dict`` round-trips it."""
        payload: dict[str, Any] = {
            "name": self.name,
            "model": self.model,
            "campaign": self.campaign,
            "variant": self.variant,
            "fault_model": self.fault_model.to_dict(),
            "rates": [float(r) for r in self.rates],
            "trials": self.trials,
            "seed": self.seed,
            "eval_images": self.eval_images,
            "split": self.split,
            "batch_size": self.batch_size,
            "mode": self.mode,
            "ci_halfwidth": float(self.ci_halfwidth),
            "batch_k": int(self.batch_k),
        }
        if self.layers is not None:
            payload["layers"] = list(self.layers)
        if self.importance is not None:
            payload["importance"] = float(self.importance)
        return payload

    @classmethod
    def from_dict(cls, mapping: Mapping[str, Any]) -> "CampaignSpec":
        """Build a spec from a mapping, rejecting unknown keys."""
        valid = {f.name for f in fields(cls)}
        unknown = set(mapping) - valid
        if unknown:
            raise ValueError(
                f"unknown spec field(s) {sorted(unknown)}; valid fields: "
                f"{sorted(valid)}"
            )
        payload = dict(mapping)
        if "fault_model" in payload:
            payload["fault_model"] = FaultModelSpec.from_value(
                payload["fault_model"]
            )
        if "rates" in payload:
            payload["rates"] = tuple(payload["rates"])
        if "layers" in payload and payload["layers"] is not None:
            payload["layers"] = tuple(payload["layers"])
        return cls(**payload)

    def shrunk(
        self, rates: int = 2, trials: int = 1, eval_images: int = 16
    ) -> "CampaignSpec":
        """A cheap variant of this spec for smoke testing.

        Keeps the scientific shape (model, campaign, variant, fault
        model) and truncates the sweep: the first and last ``rates``
        points, ``trials`` trials, ``eval_images`` evaluation images.
        """
        kept = self.rates
        if len(kept) > rates:
            kept = tuple(kept[: rates - 1]) + (kept[-1],)
        return replace(
            self,
            rates=kept,
            trials=min(self.trials, trials),
            eval_images=min(self.eval_images, eval_images),
            batch_size=min(self.batch_size, eval_images),
        )


# --------------------------------------------------------------------- #
# grid expansion and suite parsing
# --------------------------------------------------------------------- #


def _grid_slug(value: Any) -> str:
    """A short deterministic token naming one grid value."""
    if isinstance(value, Mapping):
        name = str(value.get("name", "map"))
        rest = "".join(
            f"+{key}{_grid_slug(val)}"
            for key, val in sorted(value.items())
            if key != "name"
        )
        return name + rest
    if isinstance(value, (list, tuple)):
        return "x".join(_grid_slug(v) for v in value)
    if isinstance(value, float):
        return format(value, "g")
    return str(value)


def expand_entry(
    entry: Mapping[str, Any],
    defaults: "Mapping[str, Any] | None" = None,
) -> list[CampaignSpec]:
    """Expand one scenario entry (with optional ``grid:``) into specs.

    ``defaults`` merge *under* the entry's own keys.  A ``grid:`` block
    maps spec fields to value lists and expands to their cross product;
    each expanded spec is named ``<name>/<field>=<value>/...`` in the
    grid's key order, so the matrix stays addressable in progress
    output, checkpoints and result files.
    """
    merged = {**(defaults or {}), **entry}
    grid = merged.pop("grid", None)
    if "name" not in merged:
        raise ValueError(f"scenario entry missing a 'name': {dict(entry)!r}")
    if not grid:
        return [CampaignSpec.from_dict(merged)]
    if not isinstance(grid, Mapping):
        raise ValueError(f"grid must be a mapping of field -> list, got {grid!r}")
    axes: list[tuple[str, list[Any]]] = []
    for key, values in grid.items():
        if key in ("name", "grid"):
            raise ValueError(f"grid cannot expand the {key!r} field")
        if not isinstance(values, (list, tuple)) or not values:
            raise ValueError(
                f"grid field {key!r} must map to a non-empty list, got "
                f"{values!r}"
            )
        axes.append((key, list(values)))
    specs = []
    for combo in itertools.product(*(values for _, values in axes)):
        overrides = {key: value for (key, _), value in zip(axes, combo)}
        suffix = "/".join(
            f"{key}={_grid_slug(value)}" for key, value in overrides.items()
        )
        specs.append(
            CampaignSpec.from_dict(
                {**merged, **overrides, "name": f"{merged['name']}/{suffix}"}
            )
        )
    return specs


@dataclass(frozen=True)
class ScenarioSuite:
    """A named, fully-expanded list of specs plus run-level defaults."""

    name: str
    specs: tuple[CampaignSpec, ...]
    workers: "int | None" = None

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for spec in self.specs:
            if spec.name in seen:
                raise ValueError(f"duplicate scenario name {spec.name!r}")
            seen.add(spec.name)
        if not self.specs:
            raise ValueError(f"scenario suite {self.name!r} is empty")


def parse_suite(payload: Any, name: str = "scenarios") -> ScenarioSuite:
    """Parse a loaded YAML/JSON payload into a :class:`ScenarioSuite`."""
    workers = None
    defaults: Mapping[str, Any] = {}
    if isinstance(payload, Mapping):
        if "scenarios" in payload:
            extra = set(payload) - {"name", "workers", "defaults", "scenarios"}
            if extra:
                raise ValueError(
                    f"unknown suite-level key(s) {sorted(extra)}; valid: "
                    "name, workers, defaults, scenarios"
                )
            name = payload.get("name", name)
            workers = payload.get("workers")
            defaults = payload.get("defaults") or {}
            entries: Iterable[Mapping[str, Any]] = payload["scenarios"]
        else:
            entries = [payload]
    elif isinstance(payload, list):
        entries = payload
    else:
        raise TypeError(
            f"scenario payload must be a mapping or list, got "
            f"{type(payload).__name__}"
        )
    specs: list[CampaignSpec] = []
    for entry in entries:
        if not isinstance(entry, Mapping):
            raise TypeError(f"scenario entry must be a mapping, got {entry!r}")
        specs.extend(expand_entry(entry, defaults))
    if workers is not None:
        from repro.core.executor import resolve_workers

        resolve_workers(int(workers))  # shared validation; 0 = cpu_count
        workers = int(workers)
    return ScenarioSuite(name=name, specs=tuple(specs), workers=workers)


def load_scenarios(path: "str | Path") -> ScenarioSuite:
    """Load a scenario file (``.yaml``/``.yml``/``.json``)."""
    source = Path(path)
    if not source.exists():
        raise FileNotFoundError(f"no such scenario file: {source}")
    text = source.read_text()
    if source.suffix.lower() == ".json":
        payload = json.loads(text)
    elif source.suffix.lower() in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError:  # pragma: no cover - depends on environment
            raise ImportError(
                "YAML scenario files require PyYAML; install it or convert "
                f"{source.name} to JSON (the schema is identical)"
            ) from None
        payload = yaml.safe_load(text)
    else:
        raise ValueError(
            f"unsupported scenario file suffix {source.suffix!r} "
            "(use .yaml, .yml or .json)"
        )
    return parse_suite(payload, name=source.stem)
