"""Optimizers, LR schedules and the training loop."""

from repro.optim.adam import Adam
from repro.optim.optimizer import Optimizer
from repro.optim.schedules import (
    ConstantLR,
    CosineAnnealingLR,
    LRSchedule,
    StepLR,
    WarmupWrapper,
)
from repro.optim.sgd import SGD
from repro.optim.trainer import (
    EpochStats,
    Trainer,
    TrainingHistory,
    evaluate_accuracy,
)

__all__ = [
    "Adam",
    "ConstantLR",
    "CosineAnnealingLR",
    "EpochStats",
    "LRSchedule",
    "Optimizer",
    "SGD",
    "StepLR",
    "Trainer",
    "TrainingHistory",
    "WarmupWrapper",
    "evaluate_accuracy",
]
