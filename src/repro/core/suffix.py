"""Suffix re-execution: skip the clean prefix of scoped fault campaigns.

Every Monte-Carlo cell of a *scoped* campaign — layerwise analysis,
Algorithm-1 boundary evaluation, activation-fault sweeps, quantized
scoped sweeps — faults a known set of layers, yet historically re-ran the
**full** forward pass over the evaluation set for every cell.  All
activations upstream of the first faulted layer are bit-identical to the
clean run (the prefix weights are untouched by construction), so that
prefix was recomputed thousands of times for nothing.

:class:`SuffixForwardEngine` removes that waste:

* **One clean pass per runner.**  At construction the engine runs a
  single fault-free forward over the evaluation set (in eval mode, same
  batching as :func:`repro.core.metrics.predict_labels`) and caches, per
  batch, the tensor flowing into every *candidate cut layer* — the
  top-level children of the model that contain the campaign's faultable
  layers — via :meth:`repro.nn.Sequential.forward_collect`.  The clean
  logits are kept as well.
* **Per-cell suffix execution.**  :meth:`forward_fn` receives the layers
  a cell's fault set actually touches (the injector's cut-point report)
  and returns a per-batch forward replacement that re-executes only from
  the deepest cached boundary at or above the first faulted layer, via
  :meth:`repro.nn.Sequential.forward_from`.  Cells whose fault set is
  empty (common at low rates) return the cached clean logits outright.
* **Bit-identity by construction.**  The cached boundary tensor *is* the
  tensor the full forward would recompute — the skipped prefix is
  untouched by the faults — and evaluation is pure single-threaded
  NumPy, so the suffix output equals the full-forward output bit for
  bit.  ``tests/test_core_suffix.py`` guards this with a
  registry-wide hypothesis property test.
* **Memory budget with graceful fallback.**  Cached boundaries are
  admitted deepest-first while the projected total stays within a byte
  budget (``REPRO_SUFFIX_BUDGET_MB``, default 256).  A cut below every
  cached boundary — or a batch the cache does not recognise — falls back
  to the plain full forward, never to an error.
* **One clean pass per host.**  A built engine can
  :meth:`~SuffixForwardEngine.export_cache` its state as a picklable
  :class:`SharedSuffixCache`; the campaign executor publishes that cache
  through the shared-memory tensor plane (:mod:`repro.utils.shm`) and
  every worker on the host rebuilds its engine from **read-only
  zero-copy views** of the same activations via :func:`shared_cache`
  instead of re-running the clean pass.  The cache is what the worker
  would have computed — same weights (bit-exact pickle round-trip),
  same batching, pure single-threaded NumPy — so sharing it changes
  nothing but wall clock (``docs/MEMORY_MODEL.md`` documents the
  lifecycle).

The engine is an execution detail, not science: results are bit-identical
with it on or off, which the determinism test matrix checks for every
campaign type (suffix on/off x workers 1/2 x zero-copy on/off).  Disable
globally with ``REPRO_NO_SUFFIX=1`` or per campaign with the
``suffix=False`` keyword.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro import nn
from repro.models.registry import computational_layers

__all__ = [
    "SuffixForwardEngine",
    "SharedSuffixCache",
    "shared_cache",
    "suffix_budget_bytes",
    "suffix_globally_disabled",
]

_BUDGET_ENV = "REPRO_SUFFIX_BUDGET_MB"
_DISABLE_ENV = "REPRO_NO_SUFFIX"
_DEFAULT_BUDGET_MB = 256


def suffix_globally_disabled() -> bool:
    """Whether ``REPRO_NO_SUFFIX`` turns suffix re-execution off."""
    return os.environ.get(_DISABLE_ENV, "").strip() not in ("", "0")


def suffix_budget_bytes() -> int:
    """The activation-cache byte budget (``REPRO_SUFFIX_BUDGET_MB`` env)."""
    raw = os.environ.get(_BUDGET_ENV, "").strip()
    if raw:
        try:
            return max(0, int(float(raw) * 1024 * 1024))
        except ValueError:
            pass
    return _DEFAULT_BUDGET_MB * 1024 * 1024


@dataclass(frozen=True)
class SharedSuffixCache:
    """A picklable snapshot of one engine's clean pass, shared via shm.

    Holds everything a sibling engine over a bit-identical model copy
    needs to skip its own clean forward: the per-batch boundary tensors,
    the clean logits, the batch shapes, and the admitted boundary
    indices.  All arrays are contiguous, so the tensor plane
    (:mod:`repro.utils.shm`) ships them out-of-band and workers map them
    as read-only views — the cache is read-mostly by design (the engine
    never mutates cached activations).

    ``batch_size`` and ``batch_shapes`` double as the compatibility
    fingerprint: :meth:`SuffixForwardEngine.build` silently ignores a
    cache that does not match its own evaluation set and falls back to
    running the clean pass locally.
    """

    batch_size: int
    batch_shapes: "tuple[tuple[int, ...], ...]"
    cached_indices: "tuple[int, ...]"
    cached: "tuple[dict[int, np.ndarray], ...]"
    clean_logits: "tuple[np.ndarray, ...]"


# The cache offered to the next engine build in this process, if any.
# Set by the executor's worker loop around ``task.make_runner()`` — the
# runner's engine then attaches shared activations instead of running
# its own clean pass.  A plain module global: workers are single-threaded
# and exactly one runner is built per context.
_SHARED_CACHE: "SharedSuffixCache | None" = None


@contextmanager
def shared_cache(cache: "SharedSuffixCache | None") -> Iterator[None]:
    """Offer ``cache`` to engines built inside the block.

    The executor wraps ``task.make_runner()`` in this context on the
    worker side; :meth:`SuffixForwardEngine.build` consumes the offer if
    (and only if) the cache matches its evaluation set.  ``None`` is a
    no-op, so call sites need no conditional.
    """
    global _SHARED_CACHE
    previous = _SHARED_CACHE
    _SHARED_CACHE = cache
    try:
        yield
    finally:
        _SHARED_CACHE = previous


def _top_level_index_map(model: nn.Sequential) -> "dict[str, int] | None":
    """Map each paper-style layer name to the top-level child holding it.

    Returns ``None`` when some computational layer is not reachable under
    a top-level child (an exotic model shape the engine does not handle).
    """
    owners: dict[int, set[int]] = {}
    for index, child in enumerate(model):
        owners[index] = {id(module) for module in child.modules()}
    mapping: dict[str, int] = {}
    for name, module in computational_layers(model):
        for index, ids in owners.items():
            if id(module) in ids:
                mapping[name] = index
                break
        else:
            return None
    return mapping


class SuffixForwardEngine:
    """Cached-prefix forward engine over one model and evaluation set.

    Build through :meth:`build`, which returns ``None`` whenever suffix
    re-execution cannot help (unsupported model shape, empty candidate
    set, global disable) — callers then simply keep the full-forward
    path.  When a compatible :class:`SharedSuffixCache` is offered (via
    :func:`shared_cache`), construction attaches the published
    activations — typically read-only shared-memory views — instead of
    running its own clean pass; ``stats["from_shared_cache"]`` records
    which way the engine was built.
    """

    def __init__(
        self,
        model: nn.Sequential,
        images: np.ndarray,
        batch_size: int,
        top_index: "dict[str, int]",
        candidates: Sequence[int],
        budget_bytes: int,
        clean_shortcut: bool,
        shared: "SharedSuffixCache | None" = None,
    ):
        self.model = model
        self.batch_size = int(batch_size)
        self.clean_shortcut = bool(clean_shortcut)
        self._top_index = dict(top_index)
        self.stats = {
            "cells_clean_shortcut": 0,
            "batches_suffix": 0,
            "batches_full": 0,
            "cached_bytes": 0,
            "from_shared_cache": shared is not None,
        }

        starts = list(range(0, images.shape[0], self.batch_size))
        self._batch_of_start = {start: i for i, start in enumerate(starts)}
        self._clean_logits: list[np.ndarray] = []
        # Per batch: {top-level child index: tensor flowing into it}.
        self._cached: list[dict[int, np.ndarray]] = []
        self._batch_shapes: list[tuple[int, ...]] = []

        if shared is not None:
            # Attach the published clean pass: the cache holds exactly
            # what the loop below would compute over a bit-identical
            # model copy, so no forward runs at all.  Cached arrays are
            # treated as read-only throughout (suffix execution only
            # ever reads them), so shared views need no copy.
            self._batch_shapes = [tuple(shape) for shape in shared.batch_shapes]
            self._cached = [dict(batch) for batch in shared.cached]
            self._clean_logits = list(shared.clean_logits)
            kept: "list[int] | None" = list(shared.cached_indices)
        else:
            kept = None  # decided from the first batch
            was_training = model.training
            model.eval()
            try:
                with np.errstate(over="ignore", invalid="ignore"):
                    for start in starts:
                        batch = images[start : start + self.batch_size]
                        self._batch_shapes.append(batch.shape)
                        wanted = candidates if kept is None else kept
                        logits, captured = model.forward_collect(batch, wanted)
                        if kept is None:
                            kept = self._admit_within_budget(
                                captured, batch.shape[0], images.shape[0],
                                budget_bytes,
                            )
                            captured = {i: captured[i] for i in kept}
                        self._cached.append(captured)
                        self._clean_logits.append(logits)
            finally:
                model.train(was_training)
        self.cached_indices = sorted(kept or [])
        self.stats["cached_bytes"] = sum(
            array.nbytes for batch in self._cached for array in batch.values()
        )

    @staticmethod
    def _admit_within_budget(
        captured: "dict[int, np.ndarray]",
        first_batch: int,
        total_images: int,
        budget_bytes: int,
    ) -> list[int]:
        """Pick the boundaries to keep: deepest first, projected to fit.

        Deeper boundaries skip more prefix per cell (and, conveniently,
        activations usually shrink through the network), so when the
        budget cannot hold everything the shallow boundaries are dropped
        first — their cuts then fall back toward the full forward.
        """
        kept: list[int] = []
        spent = 0
        for index in sorted(captured, reverse=True):
            per_sample = captured[index].nbytes / max(first_batch, 1)
            projected = int(per_sample * total_images)
            if spent + projected > budget_bytes:
                continue
            spent += projected
            kept.append(index)
        return kept

    # ------------------------------------------------------------------ #

    @classmethod
    def build(
        cls,
        model: nn.Module,
        images: np.ndarray,
        batch_size: int,
        scope_layers: "Iterable[str] | None" = None,
        budget_bytes: "int | None" = None,
        clean_shortcut: bool = True,
        enabled: bool = True,
    ) -> "SuffixForwardEngine | None":
        """Build an engine, or ``None`` when it cannot pay for itself.

        ``scope_layers`` are the paper-style names of the layers the
        campaign can fault (a scoped memory's ``layer_names()``, an
        activation injector's hooked layers); ``None`` means any
        computational layer.  ``clean_shortcut`` keeps the engine alive
        purely for empty-fault-set cells even when every cut would start
        at layer 0 (weight campaigns want this; activation campaigns,
        whose faults are sampled during the forward itself, do not).
        """
        if not enabled or suffix_globally_disabled():
            return None
        if not isinstance(model, nn.Sequential) or len(model) == 0:
            return None
        images = np.asarray(images)
        if images.ndim == 0 or images.shape[0] == 0:
            return None
        top_index = _top_level_index_map(model)
        if top_index is None:
            return None
        if scope_layers is None:
            scope = list(top_index)
        else:
            scope = list(scope_layers)
            if any(name not in top_index for name in scope):
                return None
        candidates = sorted({top_index[name] for name in scope} - {0})
        if not candidates and not clean_shortcut:
            return None
        budget = suffix_budget_bytes() if budget_bytes is None else int(budget_bytes)
        shared = _SHARED_CACHE
        if shared is not None and not cls._cache_compatible(
            shared, images, int(batch_size), candidates
        ):
            shared = None  # incompatible offer: run the clean pass locally
        engine = cls(
            model,
            images,
            batch_size,
            top_index,
            candidates,
            budget,
            clean_shortcut,
            shared=shared,
        )
        if not engine.cached_indices and not clean_shortcut:
            # Budget admitted nothing and empty fault sets cannot occur:
            # every cell would fall back to the full forward anyway.
            return None
        return engine

    @staticmethod
    def _cache_compatible(
        cache: SharedSuffixCache,
        images: np.ndarray,
        batch_size: int,
        candidates: Sequence[int],
    ) -> bool:
        """Whether an offered cache matches this build's evaluation set.

        The batching fingerprint (batch size + per-batch shapes) must be
        exact and every published boundary must be one this engine would
        itself consider — anything else means the offer was made for a
        different task, and the build quietly runs its own clean pass.
        """
        if cache.batch_size != batch_size:
            return False
        expected = tuple(
            (min(batch_size, images.shape[0] - start),) + images.shape[1:]
            for start in range(0, images.shape[0], batch_size)
        )
        if tuple(cache.batch_shapes) != expected:
            return False
        return set(cache.cached_indices) <= set(candidates)

    def export_cache(self) -> "SharedSuffixCache | None":
        """Snapshot the clean pass for publication to sibling engines.

        Returns ``None`` once the engine is closed.  The snapshot
        references the engine's live arrays (no copy); the tensor plane
        copies them into the shared segment exactly once at ship time.
        """
        if not self._clean_logits and not self._cached:
            return None
        return SharedSuffixCache(
            batch_size=self.batch_size,
            batch_shapes=tuple(tuple(shape) for shape in self._batch_shapes),
            cached_indices=tuple(self.cached_indices),
            cached=tuple(dict(batch) for batch in self._cached),
            clean_logits=tuple(self._clean_logits),
        )

    # ------------------------------------------------------------------ #

    def start_index_for(self, affected_layers: Sequence[str]) -> "int | None":
        """Deepest cached boundary at or above the first affected layer.

        ``None`` means no cached boundary helps (fall back to the full
        forward).  An unknown layer name is treated conservatively as a
        cut at the very first layer.
        """
        indices = [self._top_index.get(name, 0) for name in affected_layers]
        cut = min(indices) if indices else 0
        start = None
        for index in self.cached_indices:
            if index <= cut:
                start = index
            else:
                break
        return start

    def cached_input(
        self, batch_index: int, start: int
    ) -> "np.ndarray | None":
        """The cached tensor flowing into child ``start`` for one batch.

        ``None`` when the batch or boundary is not cached (callers fall
        back to the raw images).  Read-only by contract, like every
        cached activation.  This is the batched kernel's entry point
        (:mod:`repro.core.batched`): it re-runs a variant's faulted span
        itself and only needs the clean boundary tensor, not the whole
        suffix forward that :meth:`forward_fn` wraps around it.
        """
        if not 0 <= batch_index < len(self._cached):
            return None
        return self._cached[batch_index].get(start)

    def forward_fn(self, affected_layers: Sequence[str]):
        """A :data:`~repro.core.metrics.BatchForward` for one cell.

        ``affected_layers`` is the cut-point report of the cell's fault
        set (:meth:`repro.hw.injector.FaultInjector.affected_layers`,
        :meth:`repro.hw.quant.QuantizedWeightMemory.affected_layers`, or
        an activation injector's hooked layers).  Returns ``None`` when
        the plain full forward is the right path.
        """
        if not affected_layers:
            if not self.clean_shortcut:
                return None
            self.stats["cells_clean_shortcut"] += 1
            return self._clean_forward
        start = self.start_index_for(affected_layers)
        if start is None:
            return None

        def suffix_forward(batch: np.ndarray, offset: int) -> np.ndarray:
            index = self._batch_of_start.get(offset)
            if index is None or batch.shape != self._batch_shapes[index]:
                self.stats["batches_full"] += 1
                return self.model(batch)
            self.stats["batches_suffix"] += 1
            return self.model.forward_from(start, self._cached[index][start])

        return suffix_forward

    def _clean_forward(self, batch: np.ndarray, offset: int) -> np.ndarray:
        """The zero-fault shortcut: replay the cached clean logits."""
        index = self._batch_of_start.get(offset)
        if index is None or batch.shape != self._batch_shapes[index]:
            self.stats["batches_full"] += 1
            return self.model(batch)
        return self._clean_logits[index]

    def close(self) -> None:
        """Release the cached activations (idempotent)."""
        self._cached = []
        self._clean_logits = []
        self.cached_indices = []
