"""Tests for pooling layers."""

import numpy as np
import pytest

from repro import nn


def naive_maxpool(x, k, s):
    n, c, h, w = x.shape
    out_h = (h - k) // s + 1
    out_w = (w - k) // s + 1
    out = np.zeros((n, c, out_h, out_w), dtype=np.float32)
    for i in range(out_h):
        for j in range(out_w):
            out[:, :, i, j] = x[:, :, i * s : i * s + k, j * s : j * s + k].max(axis=(2, 3))
    return out


class TestMaxPool:
    @pytest.mark.parametrize("k,s", [(2, 2), (3, 1), (2, 1), (3, 3)])
    def test_matches_naive(self, k, s):
        pool = nn.MaxPool2d(k, stride=s)
        x = np.random.default_rng(0).standard_normal((2, 3, 8, 8)).astype(np.float32)
        np.testing.assert_array_equal(pool(x), naive_maxpool(x, k, s))

    def test_default_stride_equals_kernel(self):
        pool = nn.MaxPool2d(2)
        assert pool.stride == (2, 2)

    def test_backward_routes_to_argmax(self):
        pool = nn.MaxPool2d(2)
        pool.train()
        x = np.asarray(
            [[[[1.0, 2.0], [3.0, 4.0]]]], dtype=np.float32
        )
        out = pool(x)
        assert out.item() == 4.0
        grad = pool.backward(np.asarray([[[[5.0]]]], dtype=np.float32))
        np.testing.assert_array_equal(
            grad, [[[[0.0, 0.0], [0.0, 5.0]]]]
        )

    def test_backward_shape(self):
        pool = nn.MaxPool2d(2)
        pool.train()
        x = np.random.default_rng(1).standard_normal((2, 3, 8, 8)).astype(np.float32)
        out = pool(x)
        grad = pool.backward(np.ones_like(out))
        assert grad.shape == x.shape
        # Each 2x2 window contributes exactly one gradient unit.
        assert grad.sum() == pytest.approx(out.size)

    def test_wrong_ndim_rejected(self):
        with pytest.raises(ValueError):
            nn.MaxPool2d(2)(np.zeros((3, 8, 8), dtype=np.float32))

    def test_backward_before_forward(self):
        pool = nn.MaxPool2d(2)
        pool.train()
        with pytest.raises(RuntimeError):
            pool.backward(np.zeros((1, 1, 1, 1), dtype=np.float32))


class TestAvgPool:
    def test_matches_mean(self):
        pool = nn.AvgPool2d(2)
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = pool(x)
        np.testing.assert_allclose(
            out, [[[[2.5, 4.5], [10.5, 12.5]]]], rtol=1e-6
        )

    def test_backward_spreads_uniformly(self):
        pool = nn.AvgPool2d(2)
        pool.train()
        x = np.zeros((1, 1, 4, 4), dtype=np.float32)
        out = pool(x)
        grad = pool.backward(np.full_like(out, 4.0))
        np.testing.assert_allclose(grad, np.ones((1, 1, 4, 4)), rtol=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            nn.AvgPool2d(0)
        with pytest.raises(ValueError):
            nn.AvgPool2d(2, padding=-1)


class TestGlobalAvgPool:
    def test_forward_is_channel_mean(self):
        pool = nn.GlobalAvgPool2d()
        x = np.random.default_rng(0).standard_normal((2, 3, 4, 4)).astype(np.float32)
        np.testing.assert_allclose(pool(x), x.mean(axis=(2, 3)), rtol=1e-6)

    def test_backward(self):
        pool = nn.GlobalAvgPool2d()
        pool.train()
        x = np.zeros((2, 3, 4, 4), dtype=np.float32)
        pool(x)
        grad = pool.backward(np.ones((2, 3), dtype=np.float32))
        np.testing.assert_allclose(grad, np.full((2, 3, 4, 4), 1.0 / 16.0), rtol=1e-6)

    def test_wrong_ndim(self):
        with pytest.raises(ValueError):
            nn.GlobalAvgPool2d()(np.zeros((2, 3), dtype=np.float32))
