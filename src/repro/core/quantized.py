"""Fault-injection campaigns over int8 quantized weight memories.

Mirrors :mod:`repro.core.campaign` for the int8 storage model: the model
is *deployed* on dequantized-int8 weights (so the clean accuracy honestly
includes quantization error) and faults flip bits of the int8 codes.
Used by the quantization ablation benchmark to show how much of the
paper's float32 fragility disappears with bounded-error storage.

The sweep runs through the shared
:class:`~repro.core.executor.CampaignExecutor` substrate:
:class:`QuantizedCellTask` describes the campaign, ``workers=`` fans its
grid across a process pool (bit-identical to serial at any worker
count), and ``progress``/``checkpoint`` stream and resume it exactly
like the float32 campaigns.

Under the zero-copy tensor plane (``docs/MEMORY_MODEL.md``) a worker's
task arrives as read-only shared-memory views; deployment then
copy-on-writes every region it dequantizes (int8 deployment rewrites
the whole mapped memory by nature), so the plane's win for this
campaign is the one-per-host transport and the published clean-pass
activation cache rather than steady-state weight residency.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro import nn
from repro.core.campaign import CampaignConfig
from repro.core.executor import CampaignExecutor, cell_seed_path, payload_state
from repro.core.metrics import ResilienceCurve, evaluate_accuracy_arrays
from repro.hw.memory import WeightMemory
from repro.hw.quant import QuantizedWeightMemory
from repro.utils.rng import SeedTree

__all__ = ["QuantizedCellTask", "run_quantized_campaign"]


class QuantizedCellTask:
    """Cell protocol for the int8 campaign (see :mod:`repro.core.executor`).

    Seeds follow the same ``rate/<i>/trial/<j>`` derivation as the float
    campaign, so int8 and float32 runs with the same config share common
    random numbers (the *positions* differ — the bit spaces have different
    sizes — but the statistical pairing still reduces variance).
    """

    kind = "quantized"
    cell_width = 1

    def __init__(
        self,
        model: nn.Module,
        memory: WeightMemory,
        images: np.ndarray,
        labels: np.ndarray,
        config: "CampaignConfig | None" = None,
        label: str = "int8",
        suffix: bool = True,
        sampler: "Callable | None" = None,
        batch_k: int = 0,
    ):
        self.model = model
        self.memory = memory
        self.images = np.asarray(images, dtype=np.float32)
        self.labels = np.asarray(labels, dtype=np.int64)
        self.config = config if config is not None else CampaignConfig()
        self.label = label
        self._clean: "float | None" = None
        self.suffix = bool(suffix)
        # Variant-batching width (repro.core.batched); 0/1 = per-cell.
        self.batch_k = int(batch_k)
        # Optional picklable fault sampler over the *int8 code space*:
        # called as sampler(quantized_memory, rate, rng) and may return a
        # bit-index array or a FaultSet (stuck-at ops included).  None
        # keeps the historical random-bit-flip sweep.  Part of the
        # pickled payload: a stuck-at checkpoint can never resume a
        # random-flip sweep.
        self.sampler = sampler

    def __getstate__(self) -> dict:
        return payload_state(self)

    def clean_accuracy(self) -> float:
        """Accuracy on dequantized-int8 weights without faults (lazy).

        Quantization is deterministic, so deploying here and deploying in
        a runner produce bit-identical weights.
        """
        if self._clean is None:
            quantized = QuantizedWeightMemory(self.memory)
            with quantized.deployed():
                self._clean = evaluate_accuracy_arrays(
                    self.model, self.images, self.labels, self.config.batch_size
                )
        return self._clean

    def absorb_clean_logits(self, logits_batches) -> None:
        """Seed the lazy clean accuracy from an engine's clean pass.

        A quantized runner builds its suffix engine *after* deployment,
        so the exported clean logits already reflect the dequantized
        int8 weights — exactly what :meth:`clean_accuracy` measures.
        """
        from repro.core.executor import _accuracy_from_logits

        self._clean = _accuracy_from_logits(
            self._clean, logits_batches, self.labels
        )

    def make_runner(self) -> "_QuantizedCellRunner":
        return _QuantizedCellRunner(self)

    def build_result(self, rates: np.ndarray, values: np.ndarray) -> ResilienceCurve:
        return ResilienceCurve(
            fault_rates=rates,
            accuracies=values,
            clean_accuracy=self.clean_accuracy(),
            label=self.label,
        )


class _QuantizedCellRunner:
    """Holds the int8 deployment for the duration of the cell loop.

    The model runs on dequantized-int8 weights while the runner is open;
    :meth:`close` restores the original float weights (essential on the
    serial path, where the runner deploys the *caller's* model).  The
    suffix engine's clean pass runs *after* deployment, so its cached
    prefix activations reflect the dequantized weights — each cell then
    re-executes only from the first layer whose int8 codes were hit.
    """

    def __init__(self, task: QuantizedCellTask):
        from repro.core.batched import BatchedSuffixKernel
        from repro.core.suffix import SuffixForwardEngine

        self.task = task
        self.quantized = QuantizedWeightMemory(task.memory)
        self._deployment = self.quantized.deployed()
        self._deployment.__enter__()
        self.engine = None
        try:
            self.tree = SeedTree(task.config.seed)
            self.engine = SuffixForwardEngine.build(
                task.model,
                task.images,
                task.config.batch_size,
                scope_layers=task.memory.layer_names(),
                enabled=getattr(task, "suffix", True),
            )
            self.kernel = BatchedSuffixKernel(
                task.model,
                task.images,
                task.config.batch_size,
                engine=self.engine,
                batch_k=getattr(task, "batch_k", 0),
            )
        except BaseException:
            # Construction must not strand the caller's live model on
            # dequantized weights (the serial path and the executor's
            # parent-side cache export both build runners over it).
            self.close()
            raise

    @property
    def cells_per_call(self) -> int:
        """Preferred dispatch group width (1 = plain per-cell calls)."""
        return self.kernel.batch_k if self.kernel.enabled else 1

    def _fault_set(self, rate_index: int, trial: int):
        task = self.task
        rate = float(task.config.fault_rates[rate_index])
        rng = self.tree.generator(cell_seed_path(rate_index, trial))
        sampler = getattr(task, "sampler", None)
        if sampler is None:
            return self.quantized.sample_bitflips(rate, rng)
        return sampler(self.quantized, rate, rng)

    def _measure(self, forward) -> float:
        task = self.task
        return evaluate_accuracy_arrays(
            task.model, task.images, task.labels, task.config.batch_size,
            forward=forward,
        )

    def run_cell(self, rate_index: int, trial: int) -> float:
        faults = self._fault_set(rate_index, trial)
        forward = None
        if self.engine is not None:
            forward = self.engine.forward_fn(
                self.quantized.affected_layers(faults)
            )
        with self.quantized.apply(faults):
            return self._measure(forward)

    def run_cells(self, cells) -> "list[float]":
        """Batched-kernel group dispatch; bit-identical to per-cell."""
        return self.run_fault_sets(
            [self._fault_set(rate_index, trial) for rate_index, trial in cells]
        )

    def run_fault_sets(self, fault_sets) -> "list[float]":
        """Measure the deployed model under each pre-drawn fault set."""
        from functools import partial

        from repro.core.batched import FaultVariant

        variants = [
            FaultVariant(
                apply=partial(self.quantized.apply, faults),
                affected=tuple(self.quantized.affected_layers(faults)),
            )
            for faults in fault_sets
        ]
        return self.kernel.run_family(variants, self._measure)

    def close(self) -> None:
        if self.engine is not None:
            self.engine.close()
            self.engine = None
        if self._deployment is not None:
            deployment, self._deployment = self._deployment, None
            deployment.__exit__(None, None, None)


def run_quantized_campaign(
    model: nn.Module,
    memory: WeightMemory,
    images: np.ndarray,
    labels: np.ndarray,
    config: "CampaignConfig | None" = None,
    label: str = "int8",
    workers: int = 1,
    progress: "Callable | None" = None,
    checkpoint: "str | None" = None,
    suffix: bool = True,
    sampler: "Callable | None" = None,
    batch_k: int = 0,
) -> ResilienceCurve:
    """Rate sweep x trials with faults in the int8 code space.

    ``workers`` fans the grid across a process pool (``0`` = one per CPU
    core); the result is bit-identical to the serial run.  ``progress``
    receives a :class:`~repro.core.executor.CellResult` per completed
    cell and ``checkpoint`` names a JSON file enabling resume of an
    interrupted sweep — the checkpoint fingerprint records the campaign
    kind, so an int8 checkpoint can never resume a float32 sweep.
    ``suffix`` toggles suffix re-execution on the serial path
    (bit-identical either way; workers always run with the engine on —
    ``REPRO_NO_SUFFIX=1`` disables it everywhere).  ``sampler``
    optionally replaces the random-bit-flip draw with a picklable
    ``(quantized_memory, rate, rng) -> FaultSet | bit indices``
    callable — how declarative scenarios (:mod:`repro.scenarios`) run
    stuck-at/burst/targeted fault models against int8 storage.
    """
    task = QuantizedCellTask(
        model, memory, images, labels, config, label=label, suffix=suffix,
        sampler=sampler, batch_k=batch_k,
    )
    executor = CampaignExecutor(
        workers=workers, progress=progress, checkpoint=checkpoint
    )
    return executor.run_tasks([task])[0]
