"""Best-effort shared-memory shipping of worker payload bytes.

A parallel campaign serializes its state (model weights, evaluation
arrays, sampler) once and hands the blob to every worker process.
Passing the blob through the pool initializer's arguments copies it once
per worker over a pipe; for full-size VGG sweeps that per-worker copy
dominates pool start-up.  :func:`ship_bytes` instead writes the blob to
one POSIX shared-memory segment (:mod:`multiprocessing.shared_memory`)
per host; workers attach by name and read it without another copy.

Shared memory may be unavailable (no ``/dev/shm``, permissions, missing
``_posixshmem``) — :func:`ship_bytes` then degrades to carrying the
bytes inline through the initializer arguments, which is exactly the
pre-shared-memory transport.  Either way the worker-facing API is the
same: a picklable :class:`ShippedBytes` address whose :meth:`~ShippedBytes.open`
yields a readable buffer.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ShippedBytes",
    "ShippedBuffer",
    "Shipment",
    "ship_bytes",
    "shared_memory_available",
]

try:  # pragma: no cover - import succeeds on all supported platforms
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - exotic builds without _posixshmem
    _shared_memory = None


def shared_memory_available() -> bool:
    """Whether this interpreter can create shared-memory segments."""
    return _shared_memory is not None


def _attach_segment(name: str):
    """Attach to an existing segment by name.

    Pool workers inherit the parent's resource tracker, so the attach-side
    ``register`` (bpo-39959) collapses into the parent's own registration
    and the segment's lifetime stays owned by the creating process, which
    unlinks it after the pool shuts down.
    """
    return _shared_memory.SharedMemory(name=name)


class ShippedBuffer:
    """A worker-side view of a shipped blob (attach/detach lifecycle)."""

    def __init__(self, buffer, segment=None):
        self._buffer = buffer
        self._segment = segment

    @property
    def buffer(self):
        """The blob as a sliceable read buffer (memoryview or bytes)."""
        if self._buffer is None:
            raise ValueError("shipped buffer is closed")
        return self._buffer

    def close(self) -> None:
        """Detach from the segment (no-op for the inline transport)."""
        self._buffer = None
        if self._segment is not None:
            self._segment.close()
            self._segment = None


@dataclass(frozen=True)
class ShippedBytes:
    """Picklable address of a payload blob.

    Either the name of a shared-memory segment (``segment``) or, when the
    fallback transport is in use, the payload bytes themselves
    (``inline``).
    """

    segment: "str | None"
    size: int
    inline: "bytes | None" = None

    @property
    def via_shared_memory(self) -> bool:
        """Whether the blob travels through a shared-memory segment."""
        return self.segment is not None

    def open(self) -> ShippedBuffer:
        """Attach to the blob; the caller must :meth:`~ShippedBuffer.close` it."""
        if self.segment is None:
            return ShippedBuffer(self.inline)
        handle = _attach_segment(self.segment)
        return ShippedBuffer(memoryview(handle.buf)[: self.size], handle)


class Shipment:
    """Parent-side owner of a shipped blob; release() frees the segment."""

    def __init__(self, ref: ShippedBytes, segment=None):
        self.ref = ref
        self._segment = segment

    def release(self) -> None:
        """Unlink the segment (idempotent; no-op for inline transport)."""
        if self._segment is not None:
            segment, self._segment = self._segment, None
            segment.close()
            segment.unlink()


def ship_bytes(data: bytes) -> Shipment:
    """Place ``data`` where worker processes can read it once per host.

    Prefers one shared-memory segment (written once, attached by every
    worker); falls back to inline bytes (copied to each worker through
    the pool initializer's pickled arguments) when shared memory is
    unavailable or segment creation fails.
    """
    if _shared_memory is not None and len(data) > 0:
        try:
            segment = _shared_memory.SharedMemory(create=True, size=len(data))
        except OSError:
            pass  # e.g. /dev/shm missing or full: fall back to inline
        else:
            segment.buf[: len(data)] = data
            return Shipment(
                ShippedBytes(segment=segment.name, size=len(data)), segment
            )
    return Shipment(ShippedBytes(segment=None, size=len(data), inline=data))
